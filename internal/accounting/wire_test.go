package accounting

import (
	"reflect"
	"testing"
)

func samplePacket() *Packet {
	return &Packet{
		Site: "ridge", Seq: 42, SentAt: 86400.5,
		Jobs: []JobRecord{
			{
				JobID: 1, Name: "hero", User: "alice", Project: "TG-AST001",
				Site: "ridge", Machine: "ridge-xt", Queue: "batch",
				Cores: 65536, SubmitTime: 100, StartTime: 250.25, EndTime: 9999.75,
				WallSeconds: 9749.5, CoreSeconds: 6.39e8, NUs: 514000.125,
				QOS: "normal", ExitStatus: "completed", Preemptions: 2,
				SubmitVia: "gateway", GatewayID: "nanohub", WorkflowID: "wf-9",
				WorkflowEngine: "pegasus", EnsembleID: "ens-3", BrokerJobID: "bk-7",
				CoAllocID: "ca-1", ScienceField: "nanoscience",
				TruthModality: "gateway", TruthCampaign: "c-12",
			},
			{JobID: 2, Name: "", User: "bob", Project: "p", Site: "ridge",
				Machine: "ridge-xt", Queue: "batch", Cores: 1},
		},
		Transfers: []TransferRecord{
			{TransferID: 7, Src: "ridge", Dst: "mesa", Bytes: 1 << 40,
				Start: 10, End: 20, User: "alice", Project: "TG-AST001", JobID: 1},
		},
		GatewayAttrs: []GatewayAttrRecord{
			{GatewayID: "nanohub", GatewayUser: "student-77", JobID: 1, At: 100},
		},
		Storage: []StorageRecord{
			{Site: "ridge", Project: "TG-AST001", Bytes: 123456789, At: 86400},
		},
	}
}

func TestWireRoundTrip(t *testing.T) {
	p := samplePacket()
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePacket(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", p, got)
	}
}

func TestWireEmptyPacket(t *testing.T) {
	p := &Packet{Site: "s", Seq: 1, SentAt: 0}
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePacket(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", p, got)
	}
}

func TestWireDeterministic(t *testing.T) {
	a, _ := samplePacket().Encode()
	b, _ := samplePacket().Encode()
	if string(a) != string(b) {
		t.Fatal("identical packets encoded differently")
	}
}

func TestDecodeLegacyJSON(t *testing.T) {
	p := samplePacket()
	data, err := p.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePacket(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("JSON fallback mismatch:\nin:  %+v\nout: %+v", p, got)
	}
}

func TestDecodeCorruptPacket(t *testing.T) {
	data, _ := samplePacket().Encode()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("XXX\x01rest"),
		"bad version": append([]byte(wireMagic), 99),
		"truncated":   data[:len(data)/2],
		"trailing":    append(append([]byte{}, data...), 0xaa),
		"not json":    []byte("{broken"),
		"huge count":  append(append([]byte(wireMagic), wireVersion, 0x01, 's'), 0xff, 0xff, 0xff, 0x7f),
	}
	for name, d := range cases {
		if _, err := DecodePacket(d); err == nil {
			t.Errorf("%s: decode succeeded on corrupt input", name)
		}
	}
}

func BenchmarkWireRoundTrip(b *testing.B) {
	// The acct-flush hot path: encode then decode a realistic packet.
	p := samplePacket()
	for i := 0; i < 60; i++ {
		p.Jobs = append(p.Jobs, p.Jobs[0])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := p.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodePacket(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJSONRoundTrip(b *testing.B) {
	// The pre-optimization baseline, kept for comparison.
	p := samplePacket()
	for i := 0; i < 60; i++ {
		p.Jobs = append(p.Jobs, p.Jobs[0])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := p.EncodeJSON()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodePacket(data); err != nil {
			b.Fatal(err)
		}
	}
}
