package accounting

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// The export format is JSON-lines: every line is {"kind": ..., ...record}.
// It round-trips the entire central database so traces can be generated
// once (cmd/wlgen) and analyzed repeatedly (cmd/modreport).

type taggedLine struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// Export writes the full database as JSON lines.
func (c *Central) Export(w io.Writer) error {
	bw := bufio.NewWriter(w)
	write := func(kind string, v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		line, err := json.Marshal(taggedLine{Kind: kind, Data: data})
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	}
	for i := range c.jobs {
		if err := write("job", &c.jobs[i]); err != nil {
			return err
		}
	}
	for i := range c.transfers {
		if err := write("transfer", &c.transfers[i]); err != nil {
			return err
		}
	}
	for i := range c.gatewayAttrs {
		if err := write("gateway_attr", &c.gatewayAttrs[i]); err != nil {
			return err
		}
	}
	for i := range c.storage {
		if err := write("storage", &c.storage[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Import reads a JSON-lines export into an empty central database. It
// refuses to import into a database that already holds records, since the
// sequence-tracking state would be inconsistent.
func (c *Central) Import(r io.Reader) error {
	if len(c.jobs)+len(c.transfers)+len(c.gatewayAttrs)+len(c.storage) > 0 {
		return fmt.Errorf("accounting: import into non-empty database")
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var tl taggedLine
		if err := json.Unmarshal(sc.Bytes(), &tl); err != nil {
			return fmt.Errorf("accounting: import line %d: %w", lineNo, err)
		}
		switch tl.Kind {
		case "job":
			var rec JobRecord
			if err := json.Unmarshal(tl.Data, &rec); err != nil {
				return fmt.Errorf("accounting: import line %d: %w", lineNo, err)
			}
			if _, dup := c.jobIndex[rec.JobID]; dup {
				c.duplicates++
				continue
			}
			c.jobIndex[rec.JobID] = len(c.jobs)
			c.jobs = append(c.jobs, rec)
		case "transfer":
			var rec TransferRecord
			if err := json.Unmarshal(tl.Data, &rec); err != nil {
				return fmt.Errorf("accounting: import line %d: %w", lineNo, err)
			}
			c.transfers = append(c.transfers, rec)
		case "gateway_attr":
			var rec GatewayAttrRecord
			if err := json.Unmarshal(tl.Data, &rec); err != nil {
				return fmt.Errorf("accounting: import line %d: %w", lineNo, err)
			}
			c.gatewayAttrs = append(c.gatewayAttrs, rec)
		case "storage":
			var rec StorageRecord
			if err := json.Unmarshal(tl.Data, &rec); err != nil {
				return fmt.Errorf("accounting: import line %d: %w", lineNo, err)
			}
			c.storage = append(c.storage, rec)
		default:
			return fmt.Errorf("accounting: import line %d: unknown kind %q", lineNo, tl.Kind)
		}
	}
	return sc.Err()
}
