// Binary wire codec for accounting packets. The periodic ledger flush
// encodes and immediately decodes every packet (the simulated AMIE wire),
// and kernel self-profiling shows the JSON round trip dominating the
// acct-flush event — reflection-driven marshal plus unmarshal is the
// single most expensive handler at quick scale. The hand-rolled codec
// below writes the same schema as length-prefixed fields in fixed order:
// no reflection, no intermediate maps, one buffer.
//
// The wire format is internal to the simulation (producer and consumer
// are the same build), so evolution is handled with a plain version byte.
// DecodePacket still accepts the legacy JSON form — packets persisted by
// older runs or crafted by tests begin with '{' and are sniffed to the
// JSON path — and the JSON-lines archive interchange in io.go is
// untouched: run-dir artifacts remain human-readable.
package accounting

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrBadPacket is the typed error every malformed-packet failure wraps:
// truncation, bad magic, unknown version, trailing bytes, or invalid JSON.
// Decoding never panics on corrupt input; match with
// errors.Is(err, ErrBadPacket).
var ErrBadPacket = errors.New("accounting: bad packet")

// wireMagic brands binary packets; wireVersion is the schema revision.
// Version 2 appends the wasted-work fields to each job record; the encoder
// emits version 1 (byte-identical to the pre-fault codec) whenever every
// job's wasted fields are zero, so fault-free runs keep their exact wire
// bytes, and the decoder accepts both.
const (
	wireMagic    = "TGP"
	wireVersion  = byte(1)
	wireVersion2 = byte(2)
)

func appendU64(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendI64(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// wireReader is a cursor over an encoded packet. Errors are sticky: after
// the first malformed field every read returns zero values, and the caller
// checks err once at the end.
type wireReader struct {
	data []byte
	off  int
	ver  byte
	err  error
}

func (r *wireReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at offset %d", ErrBadPacket, what, r.off)
	}
}

func (r *wireReader) u64(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) i64(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) f64(what string) float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail(what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

func (r *wireReader) str(what string) string {
	n := int(r.u64(what))
	if r.err != nil {
		return ""
	}
	if n < 0 || r.off+n > len(r.data) {
		r.fail(what)
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

// count reads a slice length and bounds it by the remaining bytes (each
// element needs at least one byte), so a corrupt length cannot drive a
// huge allocation.
func (r *wireReader) count(what string) int {
	n := int(r.u64(what))
	if r.err != nil {
		return 0
	}
	if n < 0 || n > len(r.data)-r.off {
		r.fail(what)
		return 0
	}
	return n
}

func appendJobRecord(b []byte, j *JobRecord, ver byte) []byte {
	b = appendI64(b, j.JobID)
	b = appendStr(b, j.Name)
	b = appendStr(b, j.User)
	b = appendStr(b, j.Project)
	b = appendStr(b, j.Site)
	b = appendStr(b, j.Machine)
	b = appendStr(b, j.Queue)
	b = appendI64(b, int64(j.Cores))
	b = appendF64(b, j.SubmitTime)
	b = appendF64(b, j.StartTime)
	b = appendF64(b, j.EndTime)
	b = appendF64(b, j.WallSeconds)
	b = appendF64(b, j.CoreSeconds)
	b = appendF64(b, j.NUs)
	b = appendStr(b, j.QOS)
	b = appendStr(b, j.ExitStatus)
	b = appendI64(b, int64(j.Preemptions))
	b = appendStr(b, j.SubmitVia)
	b = appendStr(b, j.GatewayID)
	b = appendStr(b, j.WorkflowID)
	b = appendStr(b, j.WorkflowEngine)
	b = appendStr(b, j.EnsembleID)
	b = appendStr(b, j.BrokerJobID)
	b = appendStr(b, j.CoAllocID)
	b = appendStr(b, j.ScienceField)
	b = appendStr(b, j.TruthModality)
	b = appendStr(b, j.TruthCampaign)
	if ver >= wireVersion2 {
		b = appendF64(b, j.WastedCoreSeconds)
		b = appendF64(b, j.WastedNUs)
	}
	return b
}

func (r *wireReader) jobRecord(j *JobRecord) {
	j.JobID = r.i64("job_id")
	j.Name = r.str("name")
	j.User = r.str("user")
	j.Project = r.str("project")
	j.Site = r.str("site")
	j.Machine = r.str("machine")
	j.Queue = r.str("queue")
	j.Cores = int(r.i64("cores"))
	j.SubmitTime = r.f64("submit")
	j.StartTime = r.f64("start")
	j.EndTime = r.f64("end")
	j.WallSeconds = r.f64("wall_s")
	j.CoreSeconds = r.f64("core_s")
	j.NUs = r.f64("nus")
	j.QOS = r.str("qos")
	j.ExitStatus = r.str("exit")
	j.Preemptions = int(r.i64("preempts"))
	j.SubmitVia = r.str("submit_via")
	j.GatewayID = r.str("gateway_id")
	j.WorkflowID = r.str("workflow_id")
	j.WorkflowEngine = r.str("workflow_engine")
	j.EnsembleID = r.str("ensemble_id")
	j.BrokerJobID = r.str("broker_job_id")
	j.CoAllocID = r.str("coalloc_id")
	j.ScienceField = r.str("science_field")
	j.TruthModality = r.str("truth")
	j.TruthCampaign = r.str("truth_campaign")
	if r.ver >= wireVersion2 {
		j.WastedCoreSeconds = r.f64("wasted_core_s")
		j.WastedNUs = r.f64("wasted_nus")
	}
}

func appendTransferRecord(b []byte, t *TransferRecord) []byte {
	b = appendI64(b, t.TransferID)
	b = appendStr(b, t.Src)
	b = appendStr(b, t.Dst)
	b = appendI64(b, t.Bytes)
	b = appendF64(b, t.Start)
	b = appendF64(b, t.End)
	b = appendStr(b, t.User)
	b = appendStr(b, t.Project)
	b = appendI64(b, t.JobID)
	return b
}

func (r *wireReader) transferRecord(t *TransferRecord) {
	t.TransferID = r.i64("transfer_id")
	t.Src = r.str("src")
	t.Dst = r.str("dst")
	t.Bytes = r.i64("bytes")
	t.Start = r.f64("start")
	t.End = r.f64("end")
	t.User = r.str("user")
	t.Project = r.str("project")
	t.JobID = r.i64("job_id")
}

func appendGatewayAttrRecord(b []byte, g *GatewayAttrRecord) []byte {
	b = appendStr(b, g.GatewayID)
	b = appendStr(b, g.GatewayUser)
	b = appendI64(b, g.JobID)
	b = appendF64(b, g.At)
	return b
}

func (r *wireReader) gatewayAttrRecord(g *GatewayAttrRecord) {
	g.GatewayID = r.str("gateway_id")
	g.GatewayUser = r.str("gateway_user")
	g.JobID = r.i64("job_id")
	g.At = r.f64("at")
}

func appendStorageRecord(b []byte, s *StorageRecord) []byte {
	b = appendStr(b, s.Site)
	b = appendStr(b, s.Project)
	b = appendI64(b, s.Bytes)
	b = appendF64(b, s.At)
	return b
}

func (r *wireReader) storageRecord(s *StorageRecord) {
	s.Site = r.str("site")
	s.Project = r.str("project")
	s.Bytes = r.i64("bytes")
	s.At = r.f64("at")
}

// encodeWire serializes p in the binary wire form.
func (p *Packet) encodeWire() []byte {
	// Size hint: jobs dominate real packets; ~200 bytes each is close
	// enough to avoid most growth copies.
	b := make([]byte, 0, 64+200*len(p.Jobs)+64*len(p.Transfers)+
		48*len(p.GatewayAttrs)+48*len(p.Storage))
	// Version selection happens at encode time: only packets that actually
	// carry wasted-work data pay for (and signal) the v2 fields, keeping
	// fault-free packets byte-identical to the v1 codec.
	ver := wireVersion
	for i := range p.Jobs {
		if p.Jobs[i].WastedCoreSeconds != 0 || p.Jobs[i].WastedNUs != 0 {
			ver = wireVersion2
			break
		}
	}
	b = append(b, wireMagic...)
	b = append(b, ver)
	b = appendStr(b, p.Site)
	b = appendU64(b, p.Seq)
	b = appendF64(b, p.SentAt)
	b = appendU64(b, uint64(len(p.Jobs)))
	for i := range p.Jobs {
		b = appendJobRecord(b, &p.Jobs[i], ver)
	}
	b = appendU64(b, uint64(len(p.Transfers)))
	for i := range p.Transfers {
		b = appendTransferRecord(b, &p.Transfers[i])
	}
	b = appendU64(b, uint64(len(p.GatewayAttrs)))
	for i := range p.GatewayAttrs {
		b = appendGatewayAttrRecord(b, &p.GatewayAttrs[i])
	}
	b = appendU64(b, uint64(len(p.Storage)))
	for i := range p.Storage {
		b = appendStorageRecord(b, &p.Storage[i])
	}
	return b
}

// decodeWire parses the binary wire form produced by encodeWire.
func decodeWire(data []byte) (*Packet, error) {
	if len(data) < len(wireMagic)+1 || string(data[:len(wireMagic)]) != wireMagic {
		return nil, fmt.Errorf("%w: missing wire magic", ErrBadPacket)
	}
	v := data[len(wireMagic)]
	if v != wireVersion && v != wireVersion2 {
		return nil, fmt.Errorf("%w: unsupported wire version %d", ErrBadPacket, v)
	}
	r := &wireReader{data: data, off: len(wireMagic) + 1, ver: v}
	p := &Packet{}
	p.Site = r.str("site")
	p.Seq = r.u64("seq")
	p.SentAt = r.f64("sent_at")
	if n := r.count("jobs"); n > 0 {
		p.Jobs = make([]JobRecord, n)
		for i := range p.Jobs {
			r.jobRecord(&p.Jobs[i])
		}
	}
	if n := r.count("transfers"); n > 0 {
		p.Transfers = make([]TransferRecord, n)
		for i := range p.Transfers {
			r.transferRecord(&p.Transfers[i])
		}
	}
	if n := r.count("gateway_attrs"); n > 0 {
		p.GatewayAttrs = make([]GatewayAttrRecord, n)
		for i := range p.GatewayAttrs {
			r.gatewayAttrRecord(&p.GatewayAttrs[i])
		}
	}
	if n := r.count("storage"); n > 0 {
		p.Storage = make([]StorageRecord, n)
		for i := range p.Storage {
			r.storageRecord(&p.Storage[i])
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPacket, len(data)-r.off)
	}
	return p, nil
}
