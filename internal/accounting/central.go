package accounting

import (
	"fmt"
	"sort"
)

// Central is the federation-wide accounting database (the TGCDB analogue).
// It ingests site packets idempotently and answers the aggregation queries
// the usage-modality analysis and the experiment harness rely on.
type Central struct {
	jobs         []JobRecord
	jobIndex     map[int64]int // JobID → index in jobs
	transfers    []TransferRecord
	gatewayAttrs []GatewayAttrRecord
	storage      []StorageRecord
	seen         map[string]uint64 // per-site highest contiguous seq ingested
	duplicates   uint64
	outOfOrder   uint64
}

// NewCentral returns an empty central database.
func NewCentral() *Central {
	return &Central{
		jobIndex: make(map[int64]int),
		seen:     make(map[string]uint64),
	}
}

// Ingest applies a packet. Packets must arrive in per-site sequence order;
// re-delivery of an already-ingested sequence is counted and skipped, and a
// gap is an error (the transport below is reliable in simulation, so a gap
// indicates a bug).
func (c *Central) Ingest(p *Packet) error {
	if p == nil {
		return nil
	}
	last := c.seen[p.Site]
	switch {
	case p.Seq <= last:
		c.duplicates++
		return nil
	case p.Seq != last+1:
		c.outOfOrder++
		return fmt.Errorf("accounting: site %s packet gap: got seq %d, want %d", p.Site, p.Seq, last+1)
	}
	c.seen[p.Site] = p.Seq
	for _, r := range p.Jobs {
		if _, dup := c.jobIndex[r.JobID]; dup {
			c.duplicates++
			continue
		}
		c.jobIndex[r.JobID] = len(c.jobs)
		c.jobs = append(c.jobs, r)
	}
	c.transfers = append(c.transfers, p.Transfers...)
	c.gatewayAttrs = append(c.gatewayAttrs, p.GatewayAttrs...)
	c.storage = append(c.storage, p.Storage...)
	return nil
}

// IngestWire decodes and ingests a wire-form packet, exercising the full
// serialization path.
func (c *Central) IngestWire(data []byte) error {
	p, err := DecodePacket(data)
	if err != nil {
		return err
	}
	return c.Ingest(p)
}

// Duplicates returns how many duplicate packets/records were skipped.
func (c *Central) Duplicates() uint64 { return c.duplicates }

// Jobs returns all ingested job records (shared slice; callers must not
// modify).
func (c *Central) Jobs() []JobRecord { return c.jobs }

// Transfers returns all ingested transfer records.
func (c *Central) Transfers() []TransferRecord { return c.transfers }

// GatewayAttrs returns all ingested gateway attribute records.
func (c *Central) GatewayAttrs() []GatewayAttrRecord { return c.gatewayAttrs }

// StorageRecords returns all ingested storage snapshots.
func (c *Central) StorageRecords() []StorageRecord { return c.storage }

// Job looks a job record up by ID.
func (c *Central) Job(id int64) (JobRecord, bool) {
	i, ok := c.jobIndex[id]
	if !ok {
		return JobRecord{}, false
	}
	return c.jobs[i], true
}

// GatewayUserOf returns the gateway end-user attribute for a job, if any.
// Linear scan is avoided by building the map lazily would complicate
// invalidation; the analysis layer builds its own index once.
func (c *Central) GatewayUserOf(jobID int64) (GatewayAttrRecord, bool) {
	for _, r := range c.gatewayAttrs {
		if r.JobID == jobID {
			return r, true
		}
	}
	return GatewayAttrRecord{}, false
}

// ---- Aggregation queries ----

// TotalNUs sums normalized units across all job records.
func (c *Central) TotalNUs() float64 {
	t := 0.0
	for i := range c.jobs {
		t += c.jobs[i].NUs
	}
	return t
}

// NUsBy aggregates NUs by an arbitrary key function, returning a
// deterministic key-sorted slice.
func (c *Central) NUsBy(key func(*JobRecord) string) []KeyedValue {
	agg := make(map[string]float64)
	for i := range c.jobs {
		agg[key(&c.jobs[i])] += c.jobs[i].NUs
	}
	return sortKeyed(agg)
}

// CountBy counts job records by an arbitrary key function.
func (c *Central) CountBy(key func(*JobRecord) string) []KeyedCount {
	agg := make(map[string]int)
	for i := range c.jobs {
		agg[key(&c.jobs[i])]++
	}
	out := make([]KeyedCount, 0, len(agg))
	for k, v := range agg {
		out = append(out, KeyedCount{Key: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// DistinctUsersBy returns, per key, the number of distinct charging users.
func (c *Central) DistinctUsersBy(key func(*JobRecord) string) []KeyedCount {
	sets := make(map[string]map[string]bool)
	for i := range c.jobs {
		k := key(&c.jobs[i])
		if sets[k] == nil {
			sets[k] = make(map[string]bool)
		}
		sets[k][c.jobs[i].User] = true
	}
	out := make([]KeyedCount, 0, len(sets))
	for k, s := range sets {
		out = append(out, KeyedCount{Key: k, Count: len(s)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// DistinctUsers counts distinct charging users across all records.
func (c *Central) DistinctUsers() int {
	s := make(map[string]bool)
	for i := range c.jobs {
		s[c.jobs[i].User] = true
	}
	return len(s)
}

// KeyedValue is a (key, float) aggregation row.
type KeyedValue struct {
	Key   string
	Value float64
}

// KeyedCount is a (key, int) aggregation row.
type KeyedCount struct {
	Key   string
	Count int
}

func sortKeyed(m map[string]float64) []KeyedValue {
	out := make([]KeyedValue, 0, len(m))
	for k, v := range m {
		out = append(out, KeyedValue{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// QuarterOf maps a simulation timestamp (seconds) to a quarter index
// (0-based, 91.25-day quarters).
func QuarterOf(seconds float64) int {
	const quarter = 365.0 * 24 * 3600 / 4
	if seconds < 0 {
		return 0
	}
	return int(seconds / quarter)
}

// SizeBin buckets a core count into the standard job-size bins used in
// usage reporting. Bins: 1, 2–16, 17–128, 129–1024, 1025–8192, >8192.
func SizeBin(cores int) string {
	switch {
	case cores <= 1:
		return "1"
	case cores <= 16:
		return "2-16"
	case cores <= 128:
		return "17-128"
	case cores <= 1024:
		return "129-1024"
	case cores <= 8192:
		return "1025-8192"
	default:
		return ">8192"
	}
}

// SizeBins lists the size-bin labels in ascending order.
var SizeBins = []string{"1", "2-16", "17-128", "129-1024", "1025-8192", ">8192"}
