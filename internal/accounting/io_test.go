package accounting

import (
	"bytes"
	"strings"
	"testing"
)

func populated(t *testing.T) *Central {
	t.Helper()
	c := NewCentral()
	err := c.Ingest(&Packet{
		Site: "s", Seq: 1,
		Jobs: []JobRecord{
			{JobID: 1, User: "a", NUs: 10, Cores: 4, TruthModality: "batch-capacity"},
			{JobID: 2, User: "b", NUs: 20, Cores: 8, GatewayID: "g"},
		},
		Transfers:    []TransferRecord{{TransferID: 9, Src: "x", Dst: "y", Bytes: 100, JobID: 1}},
		GatewayAttrs: []GatewayAttrRecord{{GatewayID: "g", GatewayUser: "u", JobID: 2}},
		Storage:      []StorageRecord{{Site: "s", Project: "p", Bytes: 7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExportImportRoundTrip(t *testing.T) {
	c := populated(t)
	var buf bytes.Buffer
	if err := c.Export(&buf); err != nil {
		t.Fatal(err)
	}
	c2 := NewCentral()
	if err := c2.Import(&buf); err != nil {
		t.Fatal(err)
	}
	if len(c2.Jobs()) != 2 || len(c2.Transfers()) != 1 ||
		len(c2.GatewayAttrs()) != 1 || len(c2.StorageRecords()) != 1 {
		t.Fatalf("round trip lost records: %d/%d/%d/%d",
			len(c2.Jobs()), len(c2.Transfers()), len(c2.GatewayAttrs()), len(c2.StorageRecords()))
	}
	if c2.TotalNUs() != 30 {
		t.Errorf("TotalNUs = %v, want 30", c2.TotalNUs())
	}
	if r, ok := c2.Job(1); !ok || r.TruthModality != "batch-capacity" {
		t.Error("truth label lost in round trip")
	}
}

func TestImportRejectsNonEmpty(t *testing.T) {
	c := populated(t)
	var buf bytes.Buffer
	if err := c.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Import(&buf); err == nil {
		t.Error("import into populated database accepted")
	}
}

func TestImportDuplicateJobsSkipped(t *testing.T) {
	c := populated(t)
	var buf bytes.Buffer
	if err := c.Export(&buf); err != nil {
		t.Fatal(err)
	}
	// Duplicate the content: same job IDs twice.
	doubled := append(append([]byte{}, buf.Bytes()...), buf.Bytes()...)
	c2 := NewCentral()
	if err := c2.Import(bytes.NewReader(doubled)); err != nil {
		t.Fatal(err)
	}
	if len(c2.Jobs()) != 2 {
		t.Errorf("duplicate import produced %d jobs, want 2", len(c2.Jobs()))
	}
	if c2.Duplicates() != 2 {
		t.Errorf("Duplicates = %d, want 2", c2.Duplicates())
	}
}

func TestImportErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not json\n",
		"unknown kind": `{"kind":"martian","data":{}}` + "\n",
		"bad job":      `{"kind":"job","data":"not-an-object"}` + "\n",
		"bad transfer": `{"kind":"transfer","data":[1]}` + "\n",
		"bad attr":     `{"kind":"gateway_attr","data":7}` + "\n",
		"bad storage":  `{"kind":"storage","data":true}` + "\n",
	}
	for name, in := range cases {
		c := NewCentral()
		if err := c.Import(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Blank lines are tolerated.
	c := NewCentral()
	if err := c.Import(strings.NewReader("\n\n")); err != nil {
		t.Errorf("blank lines rejected: %v", err)
	}
}
