package accounting

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/grid"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/simrand"
)

func testMachine() *grid.Machine {
	return &grid.Machine{ID: "m", Site: "s", Nodes: 10, CoresPerNode: 8,
		GFlopsPerCore: 4, NUPerCoreHour: 2}
}

func finishedJob(id int64) *job.Job {
	return &job.Job{
		ID: job.ID(id), Name: "n", User: "alice", Project: "p",
		Site: "s", Machine: "m", Cores: 10,
		ReqWalltime: 200, RunTime: 100,
		SubmitTime: 0, StartTime: 50, EndTime: 150,
		State: job.StateCompleted,
		Attr:  job.Attributes{SubmitVia: "login", ScienceField: "physics"},
		Truth: job.Truth{Modality: job.ModBatchCapacity},
	}
}

func TestRecordOf(t *testing.T) {
	r := RecordOf(finishedJob(1), testMachine())
	if r.JobID != 1 || r.User != "alice" || r.Cores != 10 {
		t.Errorf("identity fields wrong: %+v", r)
	}
	if r.WallSeconds != 100 || r.CoreSeconds != 1000 {
		t.Errorf("usage fields wrong: wall=%v core=%v", r.WallSeconds, r.CoreSeconds)
	}
	// 1000 core-seconds at 2 NU/core-hour = 1000/3600*2.
	want := 1000.0 / 3600 * 2
	if r.NUs != want {
		t.Errorf("NUs = %v, want %v", r.NUs, want)
	}
	if r.ExitStatus != "completed" || r.QOS != "normal" {
		t.Errorf("status fields wrong: %+v", r)
	}
	if r.SubmitVia != "login" || r.ScienceField != "physics" {
		t.Errorf("attributes not carried: %+v", r)
	}
	if r.TruthModality != "batch-capacity" {
		t.Errorf("truth not carried: %q", r.TruthModality)
	}
	if r.WaitSeconds() != 50 {
		t.Errorf("WaitSeconds = %v, want 50", r.WaitSeconds())
	}
}

func TestLedgerFlush(t *testing.T) {
	l := NewLedger("s")
	if p := l.Flush(0); p != nil {
		t.Error("empty flush should return nil")
	}
	l.AddJob(JobRecord{JobID: 1})
	l.AddTransfer(TransferRecord{TransferID: 2})
	l.AddGatewayAttr(GatewayAttrRecord{JobID: 1, GatewayUser: "end-user"})
	l.AddStorage(StorageRecord{Site: "s", Project: "p", Bytes: 10})
	if l.Pending() != 4 {
		t.Errorf("Pending = %d, want 4", l.Pending())
	}
	p := l.Flush(des.Time(99))
	if p == nil || p.Seq != 1 || p.SentAt != 99 {
		t.Fatalf("flush packet wrong: %+v", p)
	}
	if len(p.Jobs) != 1 || len(p.Transfers) != 1 || len(p.GatewayAttrs) != 1 || len(p.Storage) != 1 {
		t.Errorf("packet contents wrong: %+v", p)
	}
	if l.Pending() != 0 {
		t.Error("ledger not drained")
	}
	l.AddJob(JobRecord{JobID: 2})
	if p2 := l.Flush(100); p2.Seq != 2 {
		t.Errorf("second packet seq = %d, want 2", p2.Seq)
	}
}

func TestPacketRoundTrip(t *testing.T) {
	p := &Packet{Site: "s", Seq: 7, Jobs: []JobRecord{{JobID: 3, NUs: 1.5}}}
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePacket(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Site != "s" || got.Seq != 7 || len(got.Jobs) != 1 || got.Jobs[0].NUs != 1.5 {
		t.Errorf("round trip lost data: %+v", got)
	}
	if _, err := DecodePacket([]byte("not json")); err == nil {
		t.Error("garbage packet accepted")
	}
}

func TestCentralIngestIdempotent(t *testing.T) {
	c := NewCentral()
	p1 := &Packet{Site: "s", Seq: 1, Jobs: []JobRecord{{JobID: 1, NUs: 10}}}
	if err := c.Ingest(p1); err != nil {
		t.Fatal(err)
	}
	// Re-delivery is a no-op.
	if err := c.Ingest(p1); err != nil {
		t.Fatal(err)
	}
	if c.Duplicates() != 1 {
		t.Errorf("Duplicates = %d, want 1", c.Duplicates())
	}
	if len(c.Jobs()) != 1 || c.TotalNUs() != 10 {
		t.Errorf("duplicate ingest changed state: %d jobs, %v NUs", len(c.Jobs()), c.TotalNUs())
	}
	// Gap detection.
	p3 := &Packet{Site: "s", Seq: 3}
	if err := c.Ingest(p3); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Errorf("gap not detected: %v", err)
	}
	// nil is harmless.
	if err := c.Ingest(nil); err != nil {
		t.Error("nil packet errored")
	}
}

func TestCentralIngestWire(t *testing.T) {
	c := NewCentral()
	p := &Packet{Site: "s", Seq: 1, Jobs: []JobRecord{{JobID: 5}}}
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.IngestWire(data); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Job(5); !ok {
		t.Error("wire-ingested job not found")
	}
	if err := c.IngestWire([]byte("{")); err == nil {
		t.Error("bad wire data accepted")
	}
}

func TestCentralQueries(t *testing.T) {
	c := NewCentral()
	jobs := []JobRecord{
		{JobID: 1, User: "a", Machine: "m1", NUs: 10, Cores: 1},
		{JobID: 2, User: "a", Machine: "m2", NUs: 20, Cores: 64},
		{JobID: 3, User: "b", Machine: "m1", NUs: 5, Cores: 2000},
	}
	if err := c.Ingest(&Packet{Site: "s", Seq: 1, Jobs: jobs}); err != nil {
		t.Fatal(err)
	}
	if c.TotalNUs() != 35 {
		t.Errorf("TotalNUs = %v, want 35", c.TotalNUs())
	}
	byMachine := c.NUsBy(func(r *JobRecord) string { return r.Machine })
	if len(byMachine) != 2 || byMachine[0].Key != "m1" || byMachine[0].Value != 15 {
		t.Errorf("NUsBy machine = %v", byMachine)
	}
	counts := c.CountBy(func(r *JobRecord) string { return SizeBin(r.Cores) })
	if len(counts) != 3 {
		t.Errorf("CountBy size = %v", counts)
	}
	users := c.DistinctUsersBy(func(r *JobRecord) string { return r.Machine })
	if users[0].Key != "m1" || users[0].Count != 2 || users[1].Count != 1 {
		t.Errorf("DistinctUsersBy = %v", users)
	}
	if c.DistinctUsers() != 2 {
		t.Errorf("DistinctUsers = %d, want 2", c.DistinctUsers())
	}
	if _, ok := c.Job(99); ok {
		t.Error("missing job found")
	}
}

func TestGatewayUserOf(t *testing.T) {
	c := NewCentral()
	err := c.Ingest(&Packet{Site: "s", Seq: 1,
		GatewayAttrs: []GatewayAttrRecord{{GatewayID: "g", GatewayUser: "u9", JobID: 42}}})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := c.GatewayUserOf(42)
	if !ok || r.GatewayUser != "u9" {
		t.Errorf("GatewayUserOf = %+v,%v", r, ok)
	}
	if _, ok := c.GatewayUserOf(1); ok {
		t.Error("attribute for unknown job found")
	}
}

func TestQuarterOf(t *testing.T) {
	q := 365.0 * 24 * 3600 / 4
	cases := []struct {
		s    float64
		want int
	}{{0, 0}, {q - 1, 0}, {q, 1}, {3.5 * q, 3}, {-5, 0}}
	for _, c := range cases {
		if got := QuarterOf(c.s); got != c.want {
			t.Errorf("QuarterOf(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestSizeBin(t *testing.T) {
	cases := map[int]string{
		1: "1", 2: "2-16", 16: "2-16", 17: "17-128", 128: "17-128",
		129: "129-1024", 1024: "129-1024", 1025: "1025-8192",
		8192: "1025-8192", 8193: ">8192", 100000: ">8192",
	}
	for cores, want := range cases {
		if got := SizeBin(cores); got != want {
			t.Errorf("SizeBin(%d) = %q, want %q", cores, got, want)
		}
	}
	// Every bin label is reachable and listed.
	seen := map[string]bool{}
	for cores := 1; cores <= 10000; cores++ {
		seen[SizeBin(cores)] = true
	}
	for _, b := range SizeBins {
		if !seen[b] {
			t.Errorf("bin %q unreachable", b)
		}
	}
}

// TestIngestDedupProperty: random flush/retransmit sequences never change
// aggregate totals versus exactly-once delivery.
func TestIngestDedupProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := simrand.New(seed)
		l := NewLedger("s")
		exactly := NewCentral()
		flaky := NewCentral()
		var packets []*Packet
		id := int64(0)
		for i := 0; i < 20; i++ {
			n := r.Intn(5)
			for j := 0; j < n; j++ {
				id++
				l.AddJob(JobRecord{JobID: id, NUs: float64(r.Intn(100))})
			}
			if p := l.Flush(des.Time(i)); p != nil {
				packets = append(packets, p)
			}
		}
		for _, p := range packets {
			if err := exactly.Ingest(p); err != nil {
				return false
			}
			if err := flaky.Ingest(p); err != nil {
				return false
			}
			// Random retransmissions of any earlier packet.
			for r.Bool(0.4) {
				dup := packets[r.Intn(posOf(packets, p)+1)]
				if err := flaky.Ingest(dup); err != nil {
					return false
				}
			}
		}
		return exactly.TotalNUs() == flaky.TotalNUs() &&
			len(exactly.Jobs()) == len(flaky.Jobs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func posOf(ps []*Packet, p *Packet) int {
	for i, q := range ps {
		if q == p {
			return i
		}
	}
	return 0
}
