// Package accounting implements the federation's usage accounting: the
// record schemas sites produce (job usage records, data-transfer records,
// gateway end-user attribute records), the site-local ledgers that batch
// them, the AMIE-style packet exchange that ships them to the central
// database, and the central store with the aggregation queries the
// usage-modality analysis is built on.
package accounting

import (
	"encoding/json"
	"fmt"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/grid"
	"github.com/tgsim/tgmod/internal/job"
)

// JobRecord is the per-job usage record a site reports centrally. It is
// deliberately flat and serializable: this is the wire schema, not the
// live simulation object.
type JobRecord struct {
	JobID   int64  `json:"job_id"`
	Name    string `json:"name"`
	User    string `json:"user"`
	Project string `json:"project"`
	Site    string `json:"site"`
	Machine string `json:"machine"`
	Queue   string `json:"queue"`

	Cores       int     `json:"cores"`
	SubmitTime  float64 `json:"submit"`
	StartTime   float64 `json:"start"`
	EndTime     float64 `json:"end"`
	WallSeconds float64 `json:"wall_s"`
	CoreSeconds float64 `json:"core_s"`
	NUs         float64 `json:"nus"`
	QOS         string  `json:"qos"`
	ExitStatus  string  `json:"exit"`
	Preemptions int     `json:"preempts,omitempty"`

	// Wasted work: execution lost to unplanned failures (beyond the last
	// checkpoint) that had to be redone. Separates goodput from raw usage
	// in chaos experiments; zero (and absent on the wire) in fault-free runs.
	WastedCoreSeconds float64 `json:"wasted_core_s,omitempty"`
	WastedNUs         float64 `json:"wasted_nus,omitempty"`

	// Instrumentation attributes (may be empty depending on coverage).
	SubmitVia      string `json:"submit_via,omitempty"`
	GatewayID      string `json:"gateway_id,omitempty"`
	WorkflowID     string `json:"workflow_id,omitempty"`
	WorkflowEngine string `json:"workflow_engine,omitempty"`
	EnsembleID     string `json:"ensemble_id,omitempty"`
	BrokerJobID    string `json:"broker_job_id,omitempty"`
	CoAllocID      string `json:"coalloc_id,omitempty"`
	ScienceField   string `json:"science_field,omitempty"`

	// TruthModality and TruthCampaign carry the generator's ground truth
	// for validation experiments. They are NEVER read by classifiers; the
	// core package's tests enforce that separation.
	TruthModality string `json:"truth,omitempty"`
	TruthCampaign string `json:"truth_campaign,omitempty"`
}

// RecordOf converts a finished job into its usage record, charging NUs
// according to the machine it ran on.
func RecordOf(j *job.Job, m *grid.Machine) JobRecord {
	cs := j.CoreSeconds()
	return JobRecord{
		JobID:       int64(j.ID),
		Name:        j.Name,
		User:        j.User,
		Project:     j.Project,
		Site:        j.Site,
		Machine:     j.Machine,
		Queue:       j.Queue,
		Cores:       j.Cores,
		SubmitTime:  float64(j.SubmitTime),
		StartTime:   float64(j.StartTime),
		EndTime:     float64(j.EndTime),
		WallSeconds: float64(j.Elapsed()),
		CoreSeconds: cs,
		NUs:         m.NUs(cs),
		QOS:         j.QOS.String(),
		ExitStatus:  j.State.String(),
		Preemptions: j.Preemptions,

		WastedCoreSeconds: j.WastedCoreSeconds,
		WastedNUs:         m.NUs(j.WastedCoreSeconds),

		SubmitVia:      j.Attr.SubmitVia,
		GatewayID:      j.Attr.GatewayID,
		WorkflowID:     j.Attr.WorkflowID,
		WorkflowEngine: j.Attr.WorkflowEngine,
		EnsembleID:     j.Attr.EnsembleID,
		BrokerJobID:    j.Attr.BrokerJobID,
		CoAllocID:      j.Attr.CoAllocID,
		ScienceField:   j.Attr.ScienceField,

		TruthModality: string(j.Truth.Modality),
		TruthCampaign: j.Truth.CampaignID,
	}
}

// WaitSeconds returns the record's queue wait.
func (r *JobRecord) WaitSeconds() float64 {
	w := r.StartTime - r.SubmitTime
	if w < 0 {
		return 0
	}
	return w
}

// TransferRecord is the usage record for one bulk data movement.
type TransferRecord struct {
	TransferID int64   `json:"transfer_id"`
	Src        string  `json:"src"`
	Dst        string  `json:"dst"`
	Bytes      int64   `json:"bytes"`
	Start      float64 `json:"start"`
	End        float64 `json:"end"`
	User       string  `json:"user"`
	Project    string  `json:"project"`
	JobID      int64   `json:"job_id,omitempty"`
}

// GatewayAttrRecord is the AAAA-model attribute a gateway submits alongside
// a community-account job, identifying the real end user of the request.
type GatewayAttrRecord struct {
	GatewayID   string  `json:"gateway_id"`
	GatewayUser string  `json:"gateway_user"`
	JobID       int64   `json:"job_id"`
	At          float64 `json:"at"`
}

// StorageRecord is a periodic snapshot of archival holdings per project.
type StorageRecord struct {
	Site    string  `json:"site"`
	Project string  `json:"project"`
	Bytes   int64   `json:"bytes"`
	At      float64 `json:"at"`
}

// Packet is the AMIE-style batch of records a site ships to the central
// database. Packets carry a per-site sequence number; ingestion is
// idempotent on (Site, Seq) so retransmission is safe.
type Packet struct {
	Site         string              `json:"site"`
	Seq          uint64              `json:"seq"`
	SentAt       float64             `json:"sent_at"`
	Jobs         []JobRecord         `json:"jobs,omitempty"`
	Transfers    []TransferRecord    `json:"transfers,omitempty"`
	GatewayAttrs []GatewayAttrRecord `json:"gateway_attrs,omitempty"`
	Storage      []StorageRecord     `json:"storage,omitempty"`
}

// Encode serializes the packet to its wire form — the binary codec in
// wire.go. EncodeJSON remains for tools that want a readable packet.
func (p *Packet) Encode() ([]byte, error) { return p.encodeWire(), nil }

// EncodeJSON serializes the packet as JSON, the legacy wire form.
func (p *Packet) EncodeJSON() ([]byte, error) { return json.Marshal(p) }

// DecodePacket parses a wire-form packet: the binary form by default, with
// a sniff for the legacy JSON form ('{' first byte) so persisted packets
// and hand-built test fixtures keep working.
func DecodePacket(data []byte) (*Packet, error) {
	if len(data) > 0 && data[0] == '{' {
		var p Packet
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadPacket, err)
		}
		return &p, nil
	}
	return decodeWire(data)
}

// Ledger is a site's local spool of unreported records. Sites flush their
// ledgers to the central database on a reporting interval (or at simulation
// end), mirroring how usage reporting lagged reality operationally.
type Ledger struct {
	Site         string
	seq          uint64
	jobs         []JobRecord
	transfers    []TransferRecord
	gatewayAttrs []GatewayAttrRecord
	storage      []StorageRecord
}

// NewLedger returns an empty ledger for a site.
func NewLedger(site string) *Ledger { return &Ledger{Site: site} }

// AddJob spools a job record.
func (l *Ledger) AddJob(r JobRecord) { l.jobs = append(l.jobs, r) }

// AddTransfer spools a transfer record.
func (l *Ledger) AddTransfer(r TransferRecord) { l.transfers = append(l.transfers, r) }

// AddGatewayAttr spools a gateway end-user attribute record.
func (l *Ledger) AddGatewayAttr(r GatewayAttrRecord) { l.gatewayAttrs = append(l.gatewayAttrs, r) }

// AddStorage spools a storage snapshot.
func (l *Ledger) AddStorage(r StorageRecord) { l.storage = append(l.storage, r) }

// Pending returns the number of spooled records of all kinds.
func (l *Ledger) Pending() int {
	return len(l.jobs) + len(l.transfers) + len(l.gatewayAttrs) + len(l.storage)
}

// Flush drains the ledger into a sequenced packet; it returns nil when
// nothing is pending.
func (l *Ledger) Flush(now des.Time) *Packet {
	if l.Pending() == 0 {
		return nil
	}
	l.seq++
	p := &Packet{
		Site: l.Site, Seq: l.seq, SentAt: float64(now),
		Jobs: l.jobs, Transfers: l.transfers,
		GatewayAttrs: l.gatewayAttrs, Storage: l.storage,
	}
	l.jobs = nil
	l.transfers = nil
	l.gatewayAttrs = nil
	l.storage = nil
	return p
}
