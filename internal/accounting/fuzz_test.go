package accounting

import (
	"errors"
	"reflect"
	"testing"
)

// wastedPacket carries nonzero wasted-work fields, forcing the v2 wire form.
func wastedPacket() *Packet {
	p := samplePacket()
	p.Jobs[0].WastedCoreSeconds = 12800.5
	p.Jobs[0].WastedNUs = 3.5
	return p
}

func TestWireV2RoundTrip(t *testing.T) {
	p := wastedPacket()
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if data[len(wireMagic)] != wireVersion2 {
		t.Fatalf("packet with wasted work encoded as version %d, want %d",
			data[len(wireMagic)], wireVersion2)
	}
	got, err := DecodePacket(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("v2 round trip mismatch:\nin:  %+v\nout: %+v", p, got)
	}
}

func TestWireV1ByteStableWithoutWaste(t *testing.T) {
	// Fault-free packets (all wasted fields zero) must keep the exact v1
	// encoding: the determinism gate compares wire byte counters across runs.
	data, err := samplePacket().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if data[len(wireMagic)] != wireVersion {
		t.Fatalf("fault-free packet encoded as version %d, want %d",
			data[len(wireMagic)], wireVersion)
	}
}

// Every prefix of a valid packet must fail with ErrBadPacket — typed, never
// a panic, never a silent success.
func TestDecodeTruncationsReturnTypedError(t *testing.T) {
	for _, p := range []*Packet{samplePacket(), wastedPacket()} {
		data, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(data); n++ {
			_, derr := DecodePacket(data[:n])
			if derr == nil {
				t.Fatalf("decode of %d/%d-byte prefix succeeded", n, len(data))
			}
			if !errors.Is(derr, ErrBadPacket) {
				t.Fatalf("prefix %d: error %v does not wrap ErrBadPacket", n, derr)
			}
		}
	}
}

func TestDecodeCorruptJSONReturnsTypedError(t *testing.T) {
	if _, err := DecodePacket([]byte("{not valid json")); !errors.Is(err, ErrBadPacket) {
		t.Fatalf("corrupt JSON error %v does not wrap ErrBadPacket", err)
	}
}

// FuzzDecodePacket drives arbitrary bytes through the packet decoder. The
// invariant under test: DecodePacket never panics, and every failure wraps
// the typed ErrBadPacket so callers can match it. Successful decodes must
// re-encode and decode again to the same packet (the codec is a bijection on
// its image, modulo the legacy JSON form).
func FuzzDecodePacket(f *testing.F) {
	v1, _ := samplePacket().Encode()
	v2, _ := wastedPacket().Encode()
	js, _ := samplePacket().EncodeJSON()
	empty, _ := (&Packet{Site: "s", Seq: 1}).Encode()
	f.Add(v1)
	f.Add(v2)
	f.Add(js)
	f.Add(empty)
	f.Add(v1[:len(v1)/2])
	f.Add(v2[:len(v2)-3])
	f.Add([]byte{})
	f.Add([]byte("TGP"))
	f.Add([]byte("TGP\x01"))
	f.Add([]byte("TGP\x02\x00"))
	f.Add([]byte("TGP\x63junk"))
	f.Add([]byte("{\"site\":"))
	f.Add(append(append([]byte{}, v1...), 0xaa))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePacket(data)
		if err != nil {
			if !errors.Is(err, ErrBadPacket) {
				t.Fatalf("error %v does not wrap ErrBadPacket", err)
			}
			return
		}
		// Successful decode: the packet must survive a re-encode round trip.
		re, err := p.Encode()
		if err != nil {
			t.Fatalf("re-encode of decoded packet failed: %v", err)
		}
		q, err := DecodePacket(re)
		if err != nil {
			t.Fatalf("decode of re-encoded packet failed: %v", err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("re-encode round trip mismatch:\n%+v\n%+v", p, q)
		}
	})
}
