// Package report renders experiment tables and figure series as aligned
// text and CSV. Every table and figure the benchmark harness regenerates
// flows through this package, so output formatting is uniform across the
// repository.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of rows.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable returns an empty table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond the column count are dropped, missing
// cells become empty strings.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered
// with %v, floats with 3 significant digits.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, FormatFloat(v))
		case float32:
			row = append(row, FormatFloat(float64(v)))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the given cell ("" when out of range).
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) || col < 0 || col >= len(t.Columns) {
		return ""
	}
	return t.rows[row][col]
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the text form.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.WriteText(&b); err != nil {
		return ""
	}
	return b.String()
}

// FormatFloat renders a float compactly: integers without decimals, large
// values with thousands grouping, small values with 3 significant digits.
func FormatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return GroupInt(int64(v))
	}
	if v >= 1000 || v <= -1000 {
		return GroupInt(int64(v + 0.5))
	}
	return fmt.Sprintf("%.3g", v)
}

// GroupInt renders an integer with comma thousands separators.
func GroupInt(v int64) string {
	neg := v < 0
	if neg {
		v = -v
	}
	s := fmt.Sprintf("%d", v)
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		return "-" + out
	}
	return out
}

// Percent renders a ratio as a percentage with one decimal.
func Percent(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

// Bytes renders a byte count in human units.
func Bytes(b float64) string {
	units := []string{"B", "KB", "MB", "GB", "TB", "PB"}
	i := 0
	for b >= 1000 && i < len(units)-1 {
		b /= 1000
		i++
	}
	return fmt.Sprintf("%.3g %s", b, units[i])
}

// Figure is a named series of (x, y) points — the text analogue of a plot.
type Figure struct {
	Title  string
	XLabel string
	Series []*Series
}

// Series is one line on a figure.
type Series struct {
	Name string
	X    []string
	Y    []float64
}

// NewFigure returns an empty figure.
func NewFigure(title, xlabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel}
}

// AddSeries appends a series and returns it for population.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Add appends one point.
func (s *Series) Add(x string, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// WriteText renders the figure as a table: one row per x value, one column
// per series, plus a coarse bar visualization of the first series.
func (f *Figure) WriteText(w io.Writer) error {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	t := NewTable(f.Title, cols...)
	if len(f.Series) == 0 {
		return t.WriteText(w)
	}
	maxY := 0.0
	for _, s := range f.Series {
		for _, y := range s.Y {
			if y > maxY {
				maxY = y
			}
		}
	}
	n := len(f.Series[0].X)
	for i := 0; i < n; i++ {
		row := []string{f.Series[0].X[i]}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, FormatFloat(s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	if err := t.WriteText(w); err != nil {
		return err
	}
	// Bar sketch of the first series.
	if maxY > 0 {
		var b strings.Builder
		for i, y := range f.Series[0].Y {
			bar := int(y / maxY * 40)
			fmt.Fprintf(&b, "%12s |%s\n", f.Series[0].X[i], strings.Repeat("#", bar))
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// String renders the text form.
func (f *Figure) String() string {
	var b strings.Builder
	if err := f.WriteText(&b); err != nil {
		return ""
	}
	return b.String()
}

// WriteCSV renders the figure as CSV: one row per x value, one column per
// series, so plotting tools can regenerate the graphical form directly.
func (f *Figure) WriteCSV(w io.Writer) error {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	t := NewTable("", cols...)
	if len(f.Series) > 0 {
		for i := range f.Series[0].X {
			row := []string{f.Series[0].X[i]}
			for _, s := range f.Series {
				if i < len(s.Y) {
					row = append(row, fmt.Sprintf("%g", s.Y[i]))
				} else {
					row = append(row, "")
				}
			}
			t.AddRow(row...)
		}
	}
	return t.WriteCSV(w)
}
