package report

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	s := tb.String()
	if !strings.Contains(s, "== Demo ==") {
		t.Errorf("missing title: %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, rule, two data rows
		t.Fatalf("lines = %d, want 5: %q", len(lines), s)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "col", "v")
	tb.AddRow("longer-cell", "x")
	s := tb.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// header, rule, row — all padded to same width for column 1.
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.HasPrefix(lines[1], strings.Repeat("-", len("longer-cell"))) {
		t.Errorf("rule not sized to widest cell: %q", lines[1])
	}
}

func TestAddRowShapes(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "dropped")
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	if tb.Cell(0, 1) != "" {
		t.Error("missing cell not empty")
	}
	if tb.Cell(1, 1) != "y" {
		t.Error("cell lookup wrong")
	}
	if tb.Cell(5, 0) != "" || tb.Cell(0, 9) != "" {
		t.Error("out-of-range cell not empty")
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRowf("x", 1234567.0, 0.123456)
	if tb.Cell(0, 1) != "1,234,567" {
		t.Errorf("float formatting = %q", tb.Cell(0, 1))
	}
	if tb.Cell(0, 2) != "0.123" {
		t.Errorf("small float = %q", tb.Cell(0, 2))
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`quote"inside`, "with,comma")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"quote\"\"inside\",\"with,comma\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		42:      "42",
		1234:    "1,234",
		1234567: "1,234,567",
		0.5:     "0.5",
		3.14159: "3.14",
		-1200:   "-1,200",
		1234.5:  "1,235",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestGroupInt(t *testing.T) {
	cases := map[int64]string{
		0: "0", 999: "999", 1000: "1,000", 1234567890: "1,234,567,890",
		-4321: "-4,321",
	}
	for in, want := range cases {
		if got := GroupInt(in); got != want {
			t.Errorf("GroupInt(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPercentAndBytes(t *testing.T) {
	if got := Percent(0.123); got != "12.3%" {
		t.Errorf("Percent = %q", got)
	}
	cases := map[float64]string{
		512:    "512 B",
		2048:   "2.05 KB",
		3.2e9:  "3.2 GB",
		1.5e15: "1.5 PB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFigure(t *testing.T) {
	f := NewFigure("Growth", "quarter")
	s1 := f.AddSeries("users")
	s1.Add("Q1", 10)
	s1.Add("Q2", 40)
	s2 := f.AddSeries("jobs")
	s2.Add("Q1", 100)
	s2.Add("Q2", 400)
	out := f.String()
	if !strings.Contains(out, "Growth") || !strings.Contains(out, "users") {
		t.Errorf("figure missing pieces: %q", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("figure missing bar sketch: %q", out)
	}
	// Mismatched series lengths are tolerated.
	s2.Add("Q3", 1)
	_ = f.String()
}

func TestEmptyFigure(t *testing.T) {
	f := NewFigure("Empty", "x")
	if f.String() == "" {
		t.Error("empty figure should still render a header")
	}
}

func TestFigureCSV(t *testing.T) {
	f := NewFigure("g", "x")
	s1 := f.AddSeries("a")
	s1.Add("p", 1.5)
	s1.Add("q", 2)
	s2 := f.AddSeries("b")
	s2.Add("p", 3)
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "x,a,b\np,1.5,3\nq,2,\n"
	if b.String() != want {
		t.Errorf("figure CSV = %q, want %q", b.String(), want)
	}
	// Empty figure still emits a header.
	empty := NewFigure("e", "x")
	b.Reset()
	if err := empty.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "x\n" {
		t.Errorf("empty figure CSV = %q", b.String())
	}
}
