package des

import "testing"

func TestCombineTracersDegenerateCases(t *testing.T) {
	if CombineTracers() != nil || CombineTracers(nil, nil) != nil {
		t.Error("no live tracers should combine to nil")
	}
	single := &countingTracer{}
	if got := CombineTracers(nil, single); got != Tracer(single) {
		t.Error("single live tracer should be returned unwrapped")
	}
}

func TestCombineTracersFansOut(t *testing.T) {
	a, b := &countingTracer{}, &observingTracer{}
	k := New()
	k.SetTracer(CombineTracers(a, b))
	for i := 1; i <= 4; i++ {
		k.Schedule(Time(i), func(*Kernel) {})
	}
	k.Run()
	if a.events != 4 || b.events != 4 {
		t.Errorf("fan-out saw %d/%d events, want 4/4", a.events, b.events)
	}
	if b.pending != 0 {
		t.Errorf("observer pending = %d, want 0", b.pending)
	}
}

func TestCombineTracersHidesStepObserverWhenUnused(t *testing.T) {
	// Two plain tracers: the combined tracer must not claim StepObserver,
	// so the kernel skips the post-handler call entirely.
	combined := CombineTracers(&countingTracer{}, &countingTracer{})
	if _, ok := combined.(StepObserver); ok {
		t.Error("combined plain tracers should not implement StepObserver")
	}
	// One observer in the mix: the interface must surface.
	combined = CombineTracers(&countingTracer{}, &observingTracer{})
	if _, ok := combined.(StepObserver); !ok {
		t.Error("combined tracer with an observer member must implement StepObserver")
	}
}
