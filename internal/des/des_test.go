package des

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0:00:00:00"},
		{61, "0:00:01:01"},
		{Day + Hour + Minute + Second, "1:01:01:01"},
		{-61, "-0:00:01:01"},
		{0.5, "0:00:00:00.500"},
		{61.25, "0:00:01:01.250"},
		{1.9996, "0:00:00:02"}, // rounds up to the next whole second
		{-0.5, "-0:00:00:00.500"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestScheduleOrdering(t *testing.T) {
	k := New()
	var got []int
	k.Schedule(10, func(*Kernel) { got = append(got, 2) })
	k.Schedule(5, func(*Kernel) { got = append(got, 1) })
	k.Schedule(20, func(*Kernel) { got = append(got, 3) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
	if k.Now() != 20 {
		t.Errorf("Now() = %v after run, want 20", k.Now())
	}
	if k.Executed() != 3 {
		t.Errorf("Executed() = %d, want 3", k.Executed())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	k := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.Schedule(7, func(*Kernel) { got = append(got, i) })
	}
	k.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-time events did not run in scheduling order: %v", got)
	}
}

func TestAtClampsPast(t *testing.T) {
	k := New()
	fired := Time(-1)
	k.Schedule(10, func(k *Kernel) {
		k.At(3, func(k *Kernel) { fired = k.Now() }) // in the past
	})
	k.Run()
	if fired != 10 {
		t.Errorf("past event fired at %v, want clamped to 10", fired)
	}
}

func TestCancel(t *testing.T) {
	k := New()
	ran := false
	tm := k.Schedule(5, func(*Kernel) { ran = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before run")
	}
	if !k.Cancel(tm) {
		t.Fatal("Cancel returned false for a pending timer")
	}
	if k.Cancel(tm) {
		t.Fatal("second Cancel should return false")
	}
	k.Run()
	if ran {
		t.Error("canceled event still ran")
	}
}

func TestRunUntil(t *testing.T) {
	k := New()
	var count int
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i), func(*Kernel) { count++ })
	}
	k.RunUntil(5)
	if count != 5 {
		t.Errorf("events run by t=5: %d, want 5", count)
	}
	if k.Now() != 5 {
		t.Errorf("Now() = %v, want 5", k.Now())
	}
	k.RunUntil(100)
	if count != 10 {
		t.Errorf("events run by t=100: %d, want 10", count)
	}
	if k.Now() != 100 {
		t.Errorf("Now() = %v, want clock advanced to 100", k.Now())
	}
}

func TestStopInsideHandler(t *testing.T) {
	k := New()
	var count int
	for i := 1; i <= 10; i++ {
		k.Schedule(Time(i), func(k *Kernel) {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Errorf("count = %d after Stop, want 3", count)
	}
	if k.Pending() != 7 {
		t.Errorf("pending = %d, want 7", k.Pending())
	}
}

func TestTicker(t *testing.T) {
	k := New()
	var ticks []Time
	var tk *Ticker
	tk = k.Every(10, func(k *Kernel) {
		ticks = append(ticks, k.Now())
		if len(ticks) == 4 {
			tk.Stop()
		}
	})
	k.Run()
	want := []Time{10, 20, 30, 40}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTracer(t *testing.T) {
	k := New()
	var names []string
	k.SetTracer(TracerFunc(func(at Time, name string) { names = append(names, name) }))
	k.ScheduleNamed(1, "a", func(*Kernel) {})
	k.ScheduleNamed(2, "b", func(*Kernel) {})
	k.Run()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("traced names = %v, want [a b]", names)
	}
}

func TestNextEventAt(t *testing.T) {
	k := New()
	if _, ok := k.NextEventAt(); ok {
		t.Error("NextEventAt on empty kernel should report false")
	}
	k.Schedule(42, func(*Kernel) {})
	if at, ok := k.NextEventAt(); !ok || at != 42 {
		t.Errorf("NextEventAt = %v,%v, want 42,true", at, ok)
	}
}

func TestSchedulePanics(t *testing.T) {
	k := New()
	assertPanics(t, "nil handler", func() { k.Schedule(1, nil) })
	assertPanics(t, "zero-period ticker", func() { k.Every(0, func(*Kernel) {}) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestHeapPropertyRandom exercises the event heap with random schedules and
// cancellations and checks the monotone, stable execution order invariant.
func TestHeapPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := New()
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		var timers []Timer
		n := 200 + rng.Intn(200)
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(50))
			i := i
			timers = append(timers, k.AtNamed(at, "", func(k *Kernel) {
				fired = append(fired, rec{k.Now(), i})
			}))
		}
		canceled := map[int]bool{}
		for i := 0; i < n/4; i++ {
			j := rng.Intn(n)
			if k.Cancel(timers[j]) {
				canceled[j] = true
			}
		}
		k.Run()
		if len(fired) != n-len(canceled) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false // time went backwards
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false // tie not broken by schedule order
			}
		}
		for _, r := range fired {
			if canceled[r.seq] {
				return false // canceled event fired
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestResourceImmediateGrant(t *testing.T) {
	k := New()
	r := NewResource(k, 4)
	granted := false
	req := r.Acquire(3, func(*Kernel) { granted = true })
	k.Run()
	if !granted || !req.Granted() {
		t.Fatal("acquire within capacity should grant")
	}
	if r.InUse() != 3 {
		t.Errorf("InUse = %d, want 3", r.InUse())
	}
	r.Release(3)
	if r.InUse() != 0 {
		t.Errorf("InUse after release = %d, want 0", r.InUse())
	}
}

func TestResourceFIFOBlocking(t *testing.T) {
	k := New()
	r := NewResource(k, 4)
	var order []string
	r.Acquire(4, func(*Kernel) { order = append(order, "big") })
	// Head-of-line: this small request must wait behind the next big one.
	k.Schedule(1, func(*Kernel) {
		r.Acquire(3, func(*Kernel) { order = append(order, "second") })
		r.Acquire(1, func(*Kernel) { order = append(order, "third") })
	})
	k.Schedule(2, func(*Kernel) { r.Release(4) })
	k.Run()
	want := []string{"big", "second", "third"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Errorf("grant order = %v, want %v", order, want)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	k := New()
	r := NewResource(k, 2)
	if !r.TryAcquire(2) {
		t.Fatal("TryAcquire within capacity failed")
	}
	if r.TryAcquire(1) {
		t.Fatal("TryAcquire beyond capacity succeeded")
	}
	r.Release(2)
	if !r.TryAcquire(1) {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestResourceCancelWait(t *testing.T) {
	k := New()
	r := NewResource(k, 1)
	r.Acquire(1, func(*Kernel) {})
	waiting := r.Acquire(1, func(*Kernel) { t.Error("canceled waiter ran") })
	if !r.CancelWait(waiting) {
		t.Fatal("CancelWait on queued request failed")
	}
	if r.CancelWait(waiting) {
		t.Fatal("second CancelWait should fail")
	}
	k.Run()
}

func TestResourceInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := New()
		cap := 1 + rng.Intn(16)
		r := NewResource(k, cap)
		// Random acquire/hold/release processes.
		for i := 0; i < 100; i++ {
			units := 1 + rng.Intn(cap)
			at := Time(rng.Intn(100))
			hold := Time(1 + rng.Intn(20))
			k.At(at, func(k *Kernel) {
				r.Acquire(units, func(k *Kernel) {
					if r.InUse() > r.Capacity() {
						t.Fatalf("overcommitted: inUse=%d cap=%d", r.InUse(), r.Capacity())
					}
					k.Schedule(hold, func(*Kernel) { r.Release(units) })
				})
			})
		}
		k.Run()
		return r.InUse() == 0 && r.QueueLen() == 0 && r.Grants() == 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFIFO(t *testing.T) {
	k := New()
	q := NewFIFO[int](k)
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue should fail")
	}
	q.Push(1)
	q.Push(2)
	q.Push(3)
	if q.Len() != 3 || q.MaxLen() != 3 || q.Pushes() != 3 {
		t.Errorf("Len/MaxLen/Pushes = %d/%d/%d, want 3/3/3", q.Len(), q.MaxLen(), q.Pushes())
	}
	if v, ok := q.Peek(); !ok || v != 1 {
		t.Errorf("Peek = %d,%v, want 1,true", v, ok)
	}
	for want := 1; want <= 3; want++ {
		v, ok := q.Pop()
		if !ok || v != want {
			t.Errorf("Pop = %d,%v, want %d,true", v, ok, want)
		}
	}
}

func TestFIFOMeanLen(t *testing.T) {
	k := New()
	q := NewFIFO[int](k)
	q.Push(1) // length 1 during [0,10)
	k.Schedule(10, func(*Kernel) { q.Pop() })
	k.Run()
	k.RunUntil(20) // length 0 during [10,20)
	got := q.MeanLen()
	if got < 0.49 || got > 0.51 {
		t.Errorf("MeanLen = %v, want 0.5", got)
	}
}

func BenchmarkKernelScheduleRun(b *testing.B) {
	k := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Schedule(Time(i%97), func(*Kernel) {})
		if k.Pending() > 4096 {
			for k.Pending() > 0 {
				k.Step()
			}
		}
	}
	k.Run()
}

// TestStaleTimerHandleInert checks the pool-safety contract: once an event
// fires, its node may be recycled by a later Schedule, and a handle to the
// fired event must neither report pending nor cancel the unrelated event
// that reused the node.
func TestStaleTimerHandleInert(t *testing.T) {
	k := New()
	var secondFired bool
	first := k.AtNamed(1, "first", func(*Kernel) {})
	k.Run()
	if first.Pending() {
		t.Fatal("fired timer still reports pending")
	}
	second := k.AtNamed(2, "second", func(*Kernel) { secondFired = true })
	if k.Cancel(first) {
		t.Fatal("stale handle canceled something")
	}
	if first.Name() != "" || first.At() != 0 {
		t.Errorf("stale handle leaks recycled state: name=%q at=%v", first.Name(), first.At())
	}
	if !second.Pending() {
		t.Fatal("live timer lost by stale-handle Cancel")
	}
	k.Run()
	if !secondFired {
		t.Fatal("second event did not fire")
	}
}

// TestZeroTimer checks the documented zero value: valid, never pending.
func TestZeroTimer(t *testing.T) {
	var tm Timer
	if tm.Pending() {
		t.Error("zero Timer reports pending")
	}
	if k := New(); k.Cancel(tm) {
		t.Error("zero Timer canceled something")
	}
}

// TestPendingLimitBacklog checks that a runaway event cascade trips the
// configured pending limit and surfaces as a typed ErrEventBacklog from Run
// instead of looping forever.
func TestPendingLimitBacklog(t *testing.T) {
	k := New()
	k.SetPendingLimit(64)
	var amplify Handler
	amplify = func(k *Kernel) {
		for i := 0; i < 4; i++ {
			k.ScheduleNamed(1, "amplify", amplify)
		}
	}
	k.ScheduleNamed(1, "amplify", amplify)
	err := k.Run()
	if err == nil {
		t.Fatal("Run returned nil despite backlog")
	}
	if !errors.Is(err, ErrEventBacklog) {
		t.Fatalf("err = %v, want ErrEventBacklog", err)
	}
	var be *BacklogError
	if !errors.As(err, &be) {
		t.Fatalf("err %T is not *BacklogError", err)
	}
	if be.Limit != 64 || be.Pending <= 64 {
		t.Errorf("BacklogError = %+v, want Limit=64 and Pending>64", be)
	}
	if k.Err() == nil {
		t.Error("kernel Err() not sticky")
	}
	if again := k.Run(); !errors.Is(again, ErrEventBacklog) {
		t.Errorf("second Run = %v, want sticky backlog error", again)
	}
	if err := k.RunUntil(100); !errors.Is(err, ErrEventBacklog) {
		t.Errorf("RunUntil after backlog = %v, want sticky backlog error", err)
	}
}

// TestPendingLimitNotTripped checks that a workload staying under the
// limit runs to completion with a nil error.
func TestPendingLimitNotTripped(t *testing.T) {
	k := New()
	k.SetPendingLimit(1000)
	n := 0
	for i := 0; i < 500; i++ {
		k.Schedule(Time(i), func(*Kernel) { n++ })
	}
	if err := k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 500 {
		t.Fatalf("fired %d of 500", n)
	}
}

// TestIntern checks canonicalization: equal content maps to one instance.
func TestIntern(t *testing.T) {
	a := Intern("arrival-" + "gw1")
	b := Intern("arrival-gw" + "1")
	if a != b {
		t.Fatal("intern returned different content")
	}
	if &a == &b {
		t.Log("addresses compare via header; content identity checked above")
	}
}

// BenchmarkKernelChurn measures the steady-state schedule/fire cycle the
// node pool targets: each event schedules its successor, so a pooled kernel
// should run allocation-free after warmup.
func BenchmarkKernelChurn(b *testing.B) {
	k := New()
	var next Handler
	next = func(k *Kernel) { k.ScheduleNamed(1, "churn", next) }
	k.ScheduleNamed(1, "churn", next)
	for i := 0; i < 64; i++ {
		k.Step() // warm the pool
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}
