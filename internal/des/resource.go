package des

// Resource models a counted resource (e.g. a pool of identical servers or
// bandwidth tokens) with a FIFO wait queue. Acquire either grants units
// immediately or parks the request until Release makes enough units
// available. Grants are strictly FIFO: a large request at the head of the
// queue blocks smaller requests behind it, which matches how batch-queue
// head-of-line blocking behaves and keeps the primitive deterministic.
type Resource struct {
	k        *Kernel
	capacity int
	inUse    int
	waiters  []*Request
	// stats
	grants    uint64
	queuedSum float64 // integral of queue length over time
	lastAt    Time
}

// Request is a pending or granted acquisition of resource units.
type Request struct {
	Units   int
	fn      Handler
	granted bool
	dropped bool
}

// Granted reports whether the request has been granted.
func (r *Request) Granted() bool { return r.granted }

// NewResource returns a resource with the given capacity, which must be
// positive.
func NewResource(k *Kernel, capacity int) *Resource {
	if capacity <= 0 {
		panic("des: NewResource with non-positive capacity")
	}
	return &Resource{k: k, capacity: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently granted.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of requests waiting.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Grants returns the number of acquisitions granted so far.
func (r *Resource) Grants() uint64 { return r.grants }

func (r *Resource) accumulate() {
	now := r.k.Now()
	r.queuedSum += float64(len(r.waiters)) * float64(now-r.lastAt)
	r.lastAt = now
}

// MeanQueueLen returns the time-averaged waiting-queue length since the
// start of the simulation.
func (r *Resource) MeanQueueLen() float64 {
	r.accumulate()
	if r.k.Now() == 0 {
		return 0
	}
	return r.queuedSum / float64(r.k.Now())
}

// Acquire requests units of the resource; fn runs (as a scheduled event at
// the current or a later virtual time) once the units are granted. It
// returns a handle that can be used to cancel a still-waiting request.
// Requesting more units than the capacity panics, since the request could
// never be satisfied.
func (r *Resource) Acquire(units int, fn Handler) *Request {
	if units <= 0 {
		panic("des: Acquire with non-positive units")
	}
	if units > r.capacity {
		panic("des: Acquire exceeds resource capacity")
	}
	req := &Request{Units: units, fn: fn}
	r.accumulate()
	r.waiters = append(r.waiters, req)
	r.dispatch()
	return req
}

// TryAcquire grants units immediately if available, without queueing, and
// reports whether the grant happened.
func (r *Resource) TryAcquire(units int) bool {
	if units <= 0 || units > r.capacity-r.inUse || len(r.waiters) > 0 {
		return false
	}
	r.inUse += units
	r.grants++
	return true
}

// Release returns units to the pool and wakes eligible waiters.
func (r *Resource) Release(units int) {
	if units <= 0 {
		panic("des: Release with non-positive units")
	}
	if units > r.inUse {
		panic("des: Release of more units than in use")
	}
	r.accumulate()
	r.inUse -= units
	r.dispatch()
}

// CancelWait removes a still-queued request; it reports false if the
// request was already granted or previously canceled.
func (r *Resource) CancelWait(req *Request) bool {
	if req.granted || req.dropped {
		return false
	}
	for i, w := range r.waiters {
		if w == req {
			r.accumulate()
			r.waiters = append(r.waiters[:i], r.waiters[i+1:]...)
			req.dropped = true
			r.dispatch()
			return true
		}
	}
	return false
}

// dispatch grants queued requests in FIFO order while capacity allows.
// Grants are delivered as zero-delay events so the caller of Release sees
// consistent state before any waiter runs.
func (r *Resource) dispatch() {
	for len(r.waiters) > 0 {
		head := r.waiters[0]
		if head.Units > r.capacity-r.inUse {
			return
		}
		r.waiters = r.waiters[1:]
		r.inUse += head.Units
		head.granted = true
		r.grants++
		fn := head.fn
		r.k.ScheduleNamed(0, "resource-grant", fn)
	}
}

// FIFO is an unbounded deterministic first-in-first-out queue of arbitrary
// items, with time-averaged length statistics. It underlies batch queues
// and transfer queues in higher layers.
type FIFO[T any] struct {
	k       *Kernel
	items   []T
	pushes  uint64
	lenSum  float64
	lastAt  Time
	maxSeen int
}

// NewFIFO returns an empty queue bound to kernel k for statistics purposes.
func NewFIFO[T any](k *Kernel) *FIFO[T] { return &FIFO[T]{k: k} }

func (q *FIFO[T]) accumulate() {
	now := q.k.Now()
	q.lenSum += float64(len(q.items)) * float64(now-q.lastAt)
	q.lastAt = now
}

// Push appends an item.
func (q *FIFO[T]) Push(v T) {
	q.accumulate()
	q.items = append(q.items, v)
	q.pushes++
	if len(q.items) > q.maxSeen {
		q.maxSeen = len(q.items)
	}
}

// Pop removes and returns the oldest item; ok is false when empty.
func (q *FIFO[T]) Pop() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	q.accumulate()
	v = q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	return v, true
}

// Peek returns the oldest item without removing it.
func (q *FIFO[T]) Peek() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	return q.items[0], true
}

// Len returns the current number of queued items.
func (q *FIFO[T]) Len() int { return len(q.items) }

// MaxLen returns the maximum length observed.
func (q *FIFO[T]) MaxLen() int { return q.maxSeen }

// Pushes returns the total number of items ever enqueued.
func (q *FIFO[T]) Pushes() uint64 { return q.pushes }

// MeanLen returns the time-averaged queue length since simulation start.
func (q *FIFO[T]) MeanLen() float64 {
	q.accumulate()
	if q.k.Now() == 0 {
		return 0
	}
	return q.lenSum / float64(q.k.Now())
}
