package des

// multiTracer fans kernel trace callbacks out to several tracers. The
// StepObserver sub-list is computed once at construction, so AfterEvent
// dispatch costs one slice walk, not per-event type assertions.
type multiTracer struct {
	tracers   []Tracer
	observers []StepObserver
}

// Event implements Tracer.
func (m *multiTracer) Event(at Time, name string) {
	for _, t := range m.tracers {
		t.Event(at, name)
	}
}

// AfterEvent implements StepObserver.
func (m *multiTracer) AfterEvent(at Time, name string, pending int) {
	for _, o := range m.observers {
		o.AfterEvent(at, name, pending)
	}
}

// CombineTracers merges tracers into one. Nil entries are dropped; zero
// survivors yield nil (so SetTracer(CombineTracers()) disables tracing) and
// a single survivor is returned unwrapped, keeping the common one-tracer
// case free of indirection. The result implements StepObserver whenever at
// least one member does.
func CombineTracers(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	m := &multiTracer{tracers: live}
	for _, t := range live {
		if o, ok := t.(StepObserver); ok {
			m.observers = append(m.observers, o)
		}
	}
	if len(m.observers) == 0 {
		// No member wants AfterEvent; hide the StepObserver implementation
		// so the kernel skips the post-handler call entirely.
		return tracerOnly{m}
	}
	return m
}

// tracerOnly strips the StepObserver implementation from a multiTracer.
type tracerOnly struct{ m *multiTracer }

// Event implements Tracer.
func (t tracerOnly) Event(at Time, name string) { t.m.Event(at, name) }
