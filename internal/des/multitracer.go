package des

import "time"

// multiTracer fans kernel trace callbacks out to several tracers. The
// StepObserver and OpProfiler sub-lists are computed once at construction,
// so AfterEvent/BeforeStep/FELOp dispatch costs one slice walk, not
// per-event type assertions.
type multiTracer struct {
	tracers   []Tracer
	observers []StepObserver
	profilers []OpProfiler
}

// Event implements Tracer.
func (m *multiTracer) Event(at Time, name string) {
	for _, t := range m.tracers {
		t.Event(at, name)
	}
}

// AfterEvent implements StepObserver.
func (m *multiTracer) AfterEvent(at Time, name string, pending int) {
	for _, o := range m.observers {
		o.AfterEvent(at, name, pending)
	}
}

// BeforeStep implements OpProfiler.
func (m *multiTracer) BeforeStep() {
	for _, p := range m.profilers {
		p.BeforeStep()
	}
}

// FELOp implements OpProfiler.
func (m *multiTracer) FELOp(d time.Duration) {
	for _, p := range m.profilers {
		p.FELOp(d)
	}
}

// CombineTracers merges tracers into one. Nil entries are dropped; zero
// survivors yield nil (so SetTracer(CombineTracers()) disables tracing) and
// a single survivor is returned unwrapped, keeping the common one-tracer
// case free of indirection. The result implements StepObserver (resp.
// OpProfiler) exactly when at least one member does, so combining plain
// tracers never turns on the kernel's per-step or per-heap-op hooks.
func CombineTracers(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	m := &multiTracer{tracers: live}
	for _, t := range live {
		if o, ok := t.(StepObserver); ok {
			m.observers = append(m.observers, o)
		}
		if p, ok := t.(OpProfiler); ok {
			m.profilers = append(m.profilers, p)
		}
	}
	// Hide the interfaces no member implements, so the kernel's SetTracer
	// type assertions see exactly the capabilities the members provide.
	switch {
	case len(m.observers) == 0 && len(m.profilers) == 0:
		return tracerOnly{m}
	case len(m.profilers) == 0:
		return stepOnly{m}
	case len(m.observers) == 0:
		return opOnly{m}
	}
	return m
}

// tracerOnly strips both optional interfaces from a multiTracer.
type tracerOnly struct{ m *multiTracer }

// Event implements Tracer.
func (t tracerOnly) Event(at Time, name string) { t.m.Event(at, name) }

// stepOnly strips the OpProfiler implementation from a multiTracer.
type stepOnly struct{ m *multiTracer }

// Event implements Tracer.
func (t stepOnly) Event(at Time, name string) { t.m.Event(at, name) }

// AfterEvent implements StepObserver.
func (t stepOnly) AfterEvent(at Time, name string, pending int) {
	t.m.AfterEvent(at, name, pending)
}

// opOnly strips the StepObserver implementation from a multiTracer.
type opOnly struct{ m *multiTracer }

// Event implements Tracer.
func (t opOnly) Event(at Time, name string) { t.m.Event(at, name) }

// BeforeStep implements OpProfiler.
func (t opOnly) BeforeStep() { t.m.BeforeStep() }

// FELOp implements OpProfiler.
func (t opOnly) FELOp(d time.Duration) { t.m.FELOp(d) }
