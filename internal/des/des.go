// Package des implements a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a future-event list (a 4-ary
// indexed min-heap over pooled event nodes; see heap.go). Events are
// callbacks scheduled at absolute or relative virtual times. Ties in event
// time are broken by scheduling order (a monotonically increasing sequence
// number), which makes every simulation run fully deterministic for a given
// seed and scenario.
//
// The kernel is intentionally single-threaded: discrete-event simulations
// are dominated by fine-grained causally ordered events, and a sequential
// event loop with a good heap outperforms speculative parallel execution at
// the scales this repository targets (tens of millions of events). The
// package is nevertheless safe to use from multiple kernels concurrently;
// each Kernel is independent — that property is what internal/fleet builds
// on to run many seeded replications in parallel.
package des

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in seconds since the start of
// the simulation. Durations are plain float64 seconds.
type Time float64

// Common virtual-time durations, in seconds.
const (
	Second Time = 1
	Minute Time = 60
	Hour   Time = 3600
	Day    Time = 24 * Hour
	Week   Time = 7 * Day
	Year   Time = 365 * Day
)

// Forever is a time later than any event the kernel will ever execute.
const Forever Time = Time(math.MaxFloat64)

// String renders the time as d:hh:mm:ss for readability in traces, with a
// millisecond suffix (d:hh:mm:ss.mmm) when the value has a fractional part
// — sub-second event times would otherwise all render as 0:00:00:00.
func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	s := int64(t)
	ms := int64((float64(t)-float64(s))*1000 + 0.5)
	if ms >= 1000 {
		s++
		ms = 0
	}
	d := s / 86400
	s -= d * 86400
	h := s / 3600
	s -= h * 3600
	m := s / 60
	s -= m * 60
	if ms > 0 {
		return fmt.Sprintf("%s%d:%02d:%02d:%02d.%03d", neg, d, h, m, s, ms)
	}
	return fmt.Sprintf("%s%d:%02d:%02d:%02d", neg, d, h, m, s)
}

// Handler is the callback type executed when an event fires. The kernel
// passes itself so handlers can schedule follow-on events without capturing
// the kernel in every closure.
type Handler func(k *Kernel)

// ErrEventBacklog is the sentinel matched by errors.Is when a run fails
// because the future-event list exceeded the configured pending limit —
// the DES equivalent of an unbounded queue: some component is scheduling
// events faster than virtual time can retire them. Fleet workers use it to
// fail a replication cleanly instead of draining a hot loop forever.
var ErrEventBacklog = errors.New("event backlog: future-event list exceeded pending limit")

// BacklogError is the concrete error returned by Run/RunUntil when the
// pending limit is breached. It unwraps to ErrEventBacklog and records
// where the simulation stood when the limit was hit.
type BacklogError struct {
	At      Time // virtual time of the event being executed at the breach
	Pending int  // future-event-list size that tripped the limit
	Limit   int  // the configured limit
}

func (e *BacklogError) Error() string {
	return fmt.Sprintf("des: event backlog at t=%v: %d events pending exceeds limit %d", e.At, e.Pending, e.Limit)
}

// Unwrap makes errors.Is(err, ErrEventBacklog) true.
func (e *BacklogError) Unwrap() error { return ErrEventBacklog }

// eventNode is one pooled future-event-list entry. Nodes are recycled onto
// the kernel's free list when they fire or are canceled; gen is bumped on
// every recycle so stale Timer handles become inert instead of aliasing
// whatever event reuses the node.
type eventNode struct {
	at    Time
	seq   uint64
	index int32  // heap index, -1 once fired or canceled
	gen   uint32 // incremented each time the node is recycled
	fn    Handler
	name  string
}

// Timer is a cancelable handle to a scheduled event. It is a small value
// (copy it freely); the zero value is a valid, never-pending timer. A
// handle held past its event's firing or cancellation stays safe: the
// underlying pooled node's generation moves on, and Pending/Cancel on the
// stale handle simply report false.
type Timer struct {
	n   *eventNode
	gen uint32
}

// At reports the virtual time at which the timer is scheduled to fire, or
// zero if the event has already fired or been canceled.
func (t Timer) At() Time {
	if t.n == nil || t.gen != t.n.gen {
		return 0
	}
	return t.n.at
}

// Pending reports whether the event is still scheduled.
func (t Timer) Pending() bool {
	return t.n != nil && t.gen == t.n.gen && t.n.index >= 0
}

// Name returns the debug name attached at scheduling time, or "" once the
// event has fired or been canceled.
func (t Timer) Name() string {
	if t.n == nil || t.gen != t.n.gen {
		return ""
	}
	return t.n.name
}

// Tracer receives a notification for every event executed by the kernel.
// It is intended for debugging and for building event-frequency statistics;
// production scenarios leave it nil.
type Tracer interface {
	Event(at Time, name string)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(at Time, name string)

// Event implements Tracer.
func (f TracerFunc) Event(at Time, name string) { f(at, name) }

// StepObserver is an optional Tracer extension. When the installed tracer
// also implements it, the kernel calls AfterEvent once the event's handler
// has returned, passing the pending-event count — enough to measure
// per-event wall-clock cost and future-event-list pressure from outside
// the kernel. The implementation check happens once, at SetTracer time, so
// the per-event cost for plain tracers is a single nil comparison.
type StepObserver interface {
	AfterEvent(at Time, name string, pending int)
}

// OpProfiler is an optional Tracer extension for kernel self-profiling at
// phase granularity. When the installed tracer also implements it, the
// kernel reports the wall-clock cost of its own bookkeeping separately
// from handler execution: BeforeStep fires when the kernel begins retiring
// an event (before the future-event-list pop, so the window from
// BeforeStep to Tracer.Event is pure FEL/dispatch cost), and FELOp reports
// the measured duration of each heap mutation a Schedule/At/Cancel call
// performs. Like StepObserver the implementation check happens once, at
// SetTracer time; uninstrumented runs pay one nil comparison per schedule
// and per step. Timing FEL ops costs two clock reads per heap mutation, so
// an installed OpProfiler slows the kernel — it is a profiling tool, not a
// production tracer — but it never touches virtual time or event order,
// so profiled runs stay byte-identical to plain ones.
type OpProfiler interface {
	// BeforeStep fires before the kernel pops the next event.
	BeforeStep()
	// FELOp reports the wall duration of one heap push or remove.
	FELOp(d time.Duration)
}

// Kernel is a discrete-event simulation engine. The zero value is ready to
// use; New is provided for symmetry and future options.
type Kernel struct {
	now          Time
	seq          uint64
	heap         []*eventNode
	free         []*eventNode // recycled nodes awaiting reuse
	executed     uint64
	stopped      bool
	tracer       Tracer
	after        StepObserver
	ops          OpProfiler
	maxPending   int
	pendingLimit int   // 0 = unlimited
	err          error // sticky; set on backlog breach
}

// New returns a ready-to-run kernel with the clock at zero.
func New() *Kernel { return &Kernel{} }

// SetTracer installs tr as the kernel's event tracer. Passing nil disables
// tracing. If tr also implements StepObserver, AfterEvent fires after each
// handler returns; if it also implements OpProfiler, the kernel times its
// own FEL operations and reports them.
func (k *Kernel) SetTracer(tr Tracer) {
	k.tracer = tr
	k.after = nil
	k.ops = nil
	if so, ok := tr.(StepObserver); ok {
		k.after = so
	}
	if op, ok := tr.(OpProfiler); ok {
		k.ops = op
	}
}

// SetPendingLimit bounds the future-event list. When a Schedule/At call
// pushes the pending count past limit, the kernel records a BacklogError,
// stops after the in-flight handler returns, and Run/RunUntil report the
// error. A limit of zero (the default) disables the check.
func (k *Kernel) SetPendingLimit(limit int) { k.pendingLimit = limit }

// PendingLimit returns the configured future-event-list bound (0 = none).
func (k *Kernel) PendingLimit() int { return k.pendingLimit }

// Err returns the sticky kernel error (a *BacklogError), or nil.
func (k *Kernel) Err() error { return k.err }

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Executed returns the number of events executed so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of events currently scheduled.
func (k *Kernel) Pending() int { return len(k.heap) }

// MaxPending returns the future-event-list high-water mark: the largest
// number of simultaneously pending events observed so far.
func (k *Kernel) MaxPending() int { return k.maxPending }

// alloc returns a recycled event node, or a fresh one when the pool is
// empty. Nodes are allocated in small batches so a cold kernel does not pay
// one garbage-collected allocation per scheduled event.
func (k *Kernel) alloc() *eventNode {
	if n := len(k.free); n > 0 {
		nd := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return nd
	}
	batch := make([]eventNode, 16)
	for i := 1; i < len(batch); i++ {
		k.free = append(k.free, &batch[i])
	}
	return &batch[0]
}

// recycle invalidates outstanding Timer handles to n and returns it to the
// pool. The handler reference is dropped so the pool does not pin closures.
func (k *Kernel) recycle(n *eventNode) {
	n.fn = nil
	n.name = ""
	n.gen++
	k.free = append(k.free, n)
}

// Schedule arranges for fn to run after delay seconds of virtual time and
// returns a cancelable handle. A negative delay is treated as zero.
// Scheduling panics if fn is nil.
func (k *Kernel) Schedule(delay Time, fn Handler) Timer {
	return k.ScheduleNamed(delay, "", fn)
}

// ScheduleNamed is Schedule with a debug name recorded in traces.
func (k *Kernel) ScheduleNamed(delay Time, name string, fn Handler) Timer {
	if delay < 0 {
		delay = 0
	}
	return k.AtNamed(k.now+delay, name, fn)
}

// At arranges for fn to run at absolute virtual time t. Times in the past
// are clamped to the current time (the event fires after all events already
// scheduled at the current time).
func (k *Kernel) At(t Time, fn Handler) Timer {
	return k.AtNamed(t, "", fn)
}

// AtNamed is At with a debug name recorded in traces.
func (k *Kernel) AtNamed(t Time, name string, fn Handler) Timer {
	if fn == nil {
		panic("des: Schedule called with nil handler")
	}
	if t < k.now {
		t = k.now
	}
	n := k.alloc()
	n.at = t
	n.seq = k.seq
	n.fn = fn
	n.name = name
	k.seq++
	if k.ops != nil {
		t0 := time.Now()
		k.heapPush(n)
		k.ops.FELOp(time.Since(t0))
	} else {
		k.heapPush(n)
	}
	if len(k.heap) > k.maxPending {
		k.maxPending = len(k.heap)
		if k.pendingLimit > 0 && len(k.heap) > k.pendingLimit && k.err == nil {
			k.err = &BacklogError{At: k.now, Pending: len(k.heap), Limit: k.pendingLimit}
			k.stopped = true
		}
	}
	return Timer{n: n, gen: n.gen}
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled timer is a harmless no-op. Cancel reports whether the
// event was actually removed.
func (k *Kernel) Cancel(t Timer) bool {
	if !t.Pending() {
		return false
	}
	if k.ops != nil {
		t0 := time.Now()
		k.heapRemove(int(t.n.index))
		k.ops.FELOp(time.Since(t0))
	} else {
		k.heapRemove(int(t.n.index))
	}
	k.recycle(t.n)
	return true
}

// Step executes the single next event, advancing the clock to its time.
// It reports false when no events remain.
func (k *Kernel) Step() bool {
	if len(k.heap) == 0 {
		return false
	}
	if k.ops != nil {
		k.ops.BeforeStep()
	}
	n := k.heapPopMin()
	k.now = n.at
	fn, name := n.fn, n.name
	// Recycle before running the handler: the generation bump makes any
	// handle to this firing event inert, so the node can be reused by
	// whatever the handler schedules next.
	k.recycle(n)
	k.executed++
	if k.tracer != nil {
		k.tracer.Event(k.now, name)
	}
	fn(k)
	if k.after != nil {
		k.after.AfterEvent(k.now, name, len(k.heap))
	}
	return true
}

// Run executes events until the event list is empty, Stop is called, or the
// pending limit is breached. It returns the kernel error (nil, or a
// *BacklogError matching ErrEventBacklog).
func (k *Kernel) Run() error {
	if k.err != nil {
		return k.err
	}
	k.stopped = false
	for !k.stopped && k.Step() {
	}
	return k.err
}

// RunUntil executes events with timestamps at or before limit, then sets
// the clock to limit (if the simulation did not already pass it). Events
// scheduled after limit remain pending. Like Run it returns the kernel
// error, if any.
func (k *Kernel) RunUntil(limit Time) error {
	if k.err != nil {
		return k.err
	}
	k.stopped = false
	for !k.stopped && len(k.heap) > 0 && k.heap[0].at <= limit {
		k.Step()
	}
	if k.now < limit {
		k.now = limit
	}
	return k.err
}

// Stop halts Run or RunUntil after the currently executing event returns.
// It may be called from inside an event handler.
func (k *Kernel) Stop() { k.stopped = true }

// NextEventAt returns the timestamp of the earliest pending event and true,
// or zero and false if no events are pending.
func (k *Kernel) NextEventAt() (Time, bool) {
	if len(k.heap) == 0 {
		return 0, false
	}
	return k.heap[0].at, true
}

// Every schedules fn to run repeatedly with the given period, starting
// after one period, until the returned Ticker is stopped. A period of zero
// or less panics: a zero-period ticker would live-lock the kernel.
func (k *Kernel) Every(period Time, fn Handler) *Ticker {
	return k.EveryNamed(period, "", fn)
}

// EveryNamed is Every with a debug name recorded in traces on every tick.
func (k *Kernel) EveryNamed(period Time, name string, fn Handler) *Ticker {
	if period <= 0 {
		panic("des: Every called with non-positive period")
	}
	tk := &Ticker{k: k, period: period, name: name, fn: fn}
	tk.arm()
	return tk
}

// Ticker repeatedly fires a handler at a fixed virtual-time period.
type Ticker struct {
	k       *Kernel
	period  Time
	name    string
	fn      Handler
	timer   Timer
	stopped bool
}

func (tk *Ticker) arm() {
	tk.timer = tk.k.ScheduleNamed(tk.period, tk.name, func(k *Kernel) {
		if tk.stopped {
			return
		}
		tk.fn(k)
		if !tk.stopped {
			tk.arm()
		}
	})
}

// Stop cancels the ticker; the handler will not fire again.
func (tk *Ticker) Stop() {
	tk.stopped = true
	tk.k.Cancel(tk.timer)
}
