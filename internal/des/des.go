// Package des implements a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a future-event list (a binary
// heap). Events are callbacks scheduled at absolute or relative virtual
// times. Ties in event time are broken by scheduling order (a monotonically
// increasing sequence number), which makes every simulation run fully
// deterministic for a given seed and scenario.
//
// The kernel is intentionally single-threaded: discrete-event simulations
// are dominated by fine-grained causally ordered events, and a sequential
// event loop with a good heap outperforms speculative parallel execution at
// the scales this repository targets (tens of millions of events). The
// package is nevertheless safe to use from multiple kernels concurrently;
// each Kernel is independent.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, measured in seconds since the start of
// the simulation. Durations are plain float64 seconds.
type Time float64

// Common virtual-time durations, in seconds.
const (
	Second Time = 1
	Minute Time = 60
	Hour   Time = 3600
	Day    Time = 24 * Hour
	Week   Time = 7 * Day
	Year   Time = 365 * Day
)

// Forever is a time later than any event the kernel will ever execute.
const Forever Time = Time(math.MaxFloat64)

// String renders the time as d:hh:mm:ss for readability in traces, with a
// millisecond suffix (d:hh:mm:ss.mmm) when the value has a fractional part
// — sub-second event times would otherwise all render as 0:00:00:00.
func (t Time) String() string {
	if t == Forever {
		return "forever"
	}
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	s := int64(t)
	ms := int64((float64(t)-float64(s))*1000 + 0.5)
	if ms >= 1000 {
		s++
		ms = 0
	}
	d := s / 86400
	s -= d * 86400
	h := s / 3600
	s -= h * 3600
	m := s / 60
	s -= m * 60
	if ms > 0 {
		return fmt.Sprintf("%s%d:%02d:%02d:%02d.%03d", neg, d, h, m, s, ms)
	}
	return fmt.Sprintf("%s%d:%02d:%02d:%02d", neg, d, h, m, s)
}

// Handler is the callback type executed when an event fires. The kernel
// passes itself so handlers can schedule follow-on events without capturing
// the kernel in every closure.
type Handler func(k *Kernel)

// Timer is a handle to a scheduled event. It can be used to cancel the
// event before it fires. The zero value is not a valid timer.
type Timer struct {
	at    Time
	seq   uint64
	index int // heap index, -1 once fired or canceled
	fn    Handler
	name  string
}

// At reports the virtual time at which the timer is (or was) scheduled to fire.
func (t *Timer) At() Time { return t.at }

// Pending reports whether the event is still scheduled.
func (t *Timer) Pending() bool { return t != nil && t.index >= 0 }

// Name returns the optional debug name attached at scheduling time.
func (t *Timer) Name() string { return t.name }

// eventHeap orders timers by (time, seq).
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Tracer receives a notification for every event executed by the kernel.
// It is intended for debugging and for building event-frequency statistics;
// production scenarios leave it nil.
type Tracer interface {
	Event(at Time, name string)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(at Time, name string)

// Event implements Tracer.
func (f TracerFunc) Event(at Time, name string) { f(at, name) }

// StepObserver is an optional Tracer extension. When the installed tracer
// also implements it, the kernel calls AfterEvent once the event's handler
// has returned, passing the pending-event count — enough to measure
// per-event wall-clock cost and future-event-list pressure from outside
// the kernel. The implementation check happens once, at SetTracer time, so
// the per-event cost for plain tracers is a single nil comparison.
type StepObserver interface {
	AfterEvent(at Time, name string, pending int)
}

// Kernel is a discrete-event simulation engine. The zero value is ready to
// use; New is provided for symmetry and future options.
type Kernel struct {
	now        Time
	seq        uint64
	events     eventHeap
	executed   uint64
	stopped    bool
	tracer     Tracer
	after      StepObserver
	maxPending int
}

// New returns a ready-to-run kernel with the clock at zero.
func New() *Kernel { return &Kernel{} }

// SetTracer installs tr as the kernel's event tracer. Passing nil disables
// tracing. If tr also implements StepObserver, AfterEvent fires after each
// handler returns.
func (k *Kernel) SetTracer(tr Tracer) {
	k.tracer = tr
	k.after = nil
	if so, ok := tr.(StepObserver); ok {
		k.after = so
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Executed returns the number of events executed so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending returns the number of events currently scheduled.
func (k *Kernel) Pending() int { return len(k.events) }

// MaxPending returns the future-event-list high-water mark: the largest
// number of simultaneously pending events observed so far.
func (k *Kernel) MaxPending() int { return k.maxPending }

// Schedule arranges for fn to run after delay seconds of virtual time and
// returns a cancelable handle. A negative delay is treated as zero.
// Scheduling panics if fn is nil.
func (k *Kernel) Schedule(delay Time, fn Handler) *Timer {
	return k.ScheduleNamed(delay, "", fn)
}

// ScheduleNamed is Schedule with a debug name recorded in traces.
func (k *Kernel) ScheduleNamed(delay Time, name string, fn Handler) *Timer {
	if delay < 0 {
		delay = 0
	}
	return k.AtNamed(k.now+delay, name, fn)
}

// At arranges for fn to run at absolute virtual time t. Times in the past
// are clamped to the current time (the event fires after all events already
// scheduled at the current time).
func (k *Kernel) At(t Time, fn Handler) *Timer {
	return k.AtNamed(t, "", fn)
}

// AtNamed is At with a debug name recorded in traces.
func (k *Kernel) AtNamed(t Time, name string, fn Handler) *Timer {
	if fn == nil {
		panic("des: Schedule called with nil handler")
	}
	if t < k.now {
		t = k.now
	}
	// Timers are never pooled or reused: a caller may hold a handle to a
	// fired timer and call Cancel on it much later; reuse would make that
	// cancel hit an unrelated event.
	tm := &Timer{at: t, seq: k.seq, fn: fn, name: name}
	k.seq++
	heap.Push(&k.events, tm)
	if len(k.events) > k.maxPending {
		k.maxPending = len(k.events)
	}
	return tm
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled timer is a harmless no-op. Cancel reports whether the
// event was actually removed.
func (k *Kernel) Cancel(t *Timer) bool {
	if t == nil || t.index < 0 {
		return false
	}
	heap.Remove(&k.events, t.index)
	t.fn = nil
	return true
}

// Step executes the single next event, advancing the clock to its time.
// It reports false when no events remain.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	t := heap.Pop(&k.events).(*Timer)
	k.now = t.at
	fn := t.fn
	t.fn = nil
	k.executed++
	if k.tracer != nil {
		k.tracer.Event(k.now, t.name)
	}
	fn(k)
	if k.after != nil {
		k.after.AfterEvent(k.now, t.name, len(k.events))
	}
	return true
}

// Run executes events until the event list is empty or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// RunUntil executes events with timestamps at or before limit, then sets
// the clock to limit (if the simulation did not already pass it). Events
// scheduled after limit remain pending.
func (k *Kernel) RunUntil(limit Time) {
	k.stopped = false
	for !k.stopped && len(k.events) > 0 && k.events[0].at <= limit {
		k.Step()
	}
	if k.now < limit {
		k.now = limit
	}
}

// Stop halts Run or RunUntil after the currently executing event returns.
// It may be called from inside an event handler.
func (k *Kernel) Stop() { k.stopped = true }

// NextEventAt returns the timestamp of the earliest pending event and true,
// or zero and false if no events are pending.
func (k *Kernel) NextEventAt() (Time, bool) {
	if len(k.events) == 0 {
		return 0, false
	}
	return k.events[0].at, true
}

// Every schedules fn to run repeatedly with the given period, starting
// after one period, until the returned Ticker is stopped. A period of zero
// or less panics: a zero-period ticker would live-lock the kernel.
func (k *Kernel) Every(period Time, fn Handler) *Ticker {
	return k.EveryNamed(period, "", fn)
}

// EveryNamed is Every with a debug name recorded in traces on every tick.
func (k *Kernel) EveryNamed(period Time, name string, fn Handler) *Ticker {
	if period <= 0 {
		panic("des: Every called with non-positive period")
	}
	tk := &Ticker{k: k, period: period, name: name, fn: fn}
	tk.arm()
	return tk
}

// Ticker repeatedly fires a handler at a fixed virtual-time period.
type Ticker struct {
	k       *Kernel
	period  Time
	name    string
	fn      Handler
	timer   *Timer
	stopped bool
}

func (tk *Ticker) arm() {
	tk.timer = tk.k.ScheduleNamed(tk.period, tk.name, func(k *Kernel) {
		if tk.stopped {
			return
		}
		tk.fn(k)
		if !tk.stopped {
			tk.arm()
		}
	})
}

// Stop cancels the ticker; the handler will not fire again.
func (tk *Ticker) Stop() {
	tk.stopped = true
	tk.k.Cancel(tk.timer)
}
