package des

// The future-event list is a hand-rolled 4-ary indexed min-heap over pooled
// event nodes, ordered by (time, seq). A 4-ary layout halves the tree depth
// of a binary heap and keeps the four children of a node in at most two
// cache lines, which matters because sift-down — the dominant operation in
// a DES, where most pushes land near the back — reads every child it
// visits. The heap maintains node.index so Cancel can remove an arbitrary
// pending event in O(log n) without a search.
//
// The ordering predicate is identical to the previous container/heap
// implementation, and heap extraction order is a total order under it, so
// event execution order — and therefore every simulation result — is
// byte-for-byte unchanged by the switch.

// eventLess orders nodes by time, then by scheduling sequence.
func eventLess(a, b *eventNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush appends n and restores the heap property.
func (k *Kernel) heapPush(n *eventNode) {
	n.index = int32(len(k.heap))
	k.heap = append(k.heap, n)
	k.siftUp(len(k.heap) - 1)
}

// heapPopMin removes and returns the earliest event.
func (k *Kernel) heapPopMin() *eventNode {
	h := k.heap
	n := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[0].index = 0
	h[last] = nil
	k.heap = h[:last]
	if last > 0 {
		k.siftDown(0)
	}
	n.index = -1
	return n
}

// heapRemove deletes the node at index i (for Cancel).
func (k *Kernel) heapRemove(i int) {
	h := k.heap
	n := h[i]
	last := len(h) - 1
	if i != last {
		h[i] = h[last]
		h[i].index = int32(i)
	}
	h[last] = nil
	k.heap = h[:last]
	if i < last {
		if !k.siftDown(i) {
			k.siftUp(i)
		}
	}
	n.index = -1
}

// siftUp moves the node at index i toward the root until its parent is no
// later. It shifts parents down into the hole rather than swapping, so each
// level costs one store instead of three.
func (k *Kernel) siftUp(i int) {
	h := k.heap
	n := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(n, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = int32(i)
		i = p
	}
	h[i] = n
	n.index = int32(i)
}

// siftDown moves the node at index i toward the leaves, swapping with its
// earliest child while that child sorts before it. It reports whether the
// node moved.
func (k *Kernel) siftDown(i int) bool {
	h := k.heap
	n := h[i]
	start := i
	sz := len(h)
	for {
		c := i<<2 + 1
		if c >= sz {
			break
		}
		m := c
		end := c + 4
		if end > sz {
			end = sz
		}
		for j := c + 1; j < end; j++ {
			if eventLess(h[j], h[m]) {
				m = j
			}
		}
		if !eventLess(h[m], n) {
			break
		}
		h[i] = h[m]
		h[i].index = int32(i)
		i = m
	}
	h[i] = n
	n.index = int32(i)
	return i != start
}
