package des

import "sync"

// Event-name interning. Hot schedule sites name their events so tracers,
// profilers, and telemetry can aggregate by kind; when a name is built
// dynamically (per generator, per gateway), naive construction allocates a
// fresh string per component — or worse, per event — and every downstream
// map keyed by name re-hashes distinct backing arrays. Intern canonicalizes
// such names once at construction time so every event of a kind shares one
// string value, keeping the per-event cost at pointer-equality speed.
//
// The table is global and synchronized (fleet replications build scenarios
// concurrently), deliberately never evicted: the universe of event names is
// small and fixed by scenario topology.

var (
	internMu  sync.Mutex
	internTab = make(map[string]string)
)

// Intern returns the canonical instance of name. Call it when constructing
// a dynamic event name that will be reused across many Schedule calls; do
// not call it per event — the point is to pay the map lookup once.
func Intern(name string) string {
	internMu.Lock()
	s, ok := internTab[name]
	if !ok {
		s = name
		internTab[name] = s
	}
	internMu.Unlock()
	return s
}
