package des

import "testing"

// countingTracer is a minimal non-nil tracer for the comparison benchmark.
type countingTracer struct{ events uint64 }

func (c *countingTracer) Event(at Time, name string) { c.events++ }

// stepping is a self-perpetuating event chain: each handler schedules the
// next, so every Step pops exactly one event and pushes one. This isolates
// the per-Step cost from heap growth effects.
func stepping(k *Kernel, n int) {
	var fn Handler
	left := n
	fn = func(k *Kernel) {
		left--
		if left > 0 {
			k.Schedule(1, fn)
		}
	}
	k.Schedule(1, fn)
}

// BenchmarkStep compares Kernel.Step with no tracer installed against the
// same workload with a minimal tracer. The NilTracer case must not be
// measurably slower than it was before the tracing seam existed: the only
// cost a disabled tracer is allowed to add is one pointer comparison.
func BenchmarkStep(b *testing.B) {
	b.Run("NilTracer", func(b *testing.B) {
		k := New()
		stepping(k, b.N)
		b.ResetTimer()
		for k.Step() {
		}
	})
	b.Run("CountingTracer", func(b *testing.B) {
		k := New()
		k.SetTracer(&countingTracer{})
		stepping(k, b.N)
		b.ResetTimer()
		for k.Step() {
		}
	})
	b.Run("Profiled", func(b *testing.B) {
		// A tracer that also implements StepObserver, exercising the
		// AfterEvent hook path cached at SetTracer time.
		k := New()
		k.SetTracer(&observingTracer{})
		stepping(k, b.N)
		b.ResetTimer()
		for k.Step() {
		}
	})
}

type observingTracer struct {
	events  uint64
	pending int
}

func (o *observingTracer) Event(at Time, name string) { o.events++ }
func (o *observingTracer) AfterEvent(at Time, name string, pending int) {
	o.pending = pending
}

func TestStepObserverSeesPending(t *testing.T) {
	k := New()
	o := &observingTracer{}
	k.SetTracer(o)
	for i := 1; i <= 5; i++ {
		k.Schedule(Time(i), func(*Kernel) {})
	}
	k.Run()
	if o.events != 5 {
		t.Errorf("observer saw %d events, want 5", o.events)
	}
	if o.pending != 0 {
		t.Errorf("pending after last event = %d, want 0", o.pending)
	}
	if k.MaxPending() != 5 {
		t.Errorf("MaxPending = %d, want 5", k.MaxPending())
	}
}

func TestEveryNamed(t *testing.T) {
	k := New()
	var names []string
	k.SetTracer(tracerFunc(func(at Time, name string) { names = append(names, name) }))
	n := 0
	tk := k.EveryNamed(10, "tick", func(*Kernel) { n++ })
	k.RunUntil(35)
	if n != 3 {
		t.Errorf("ticker fired %d times, want 3", n)
	}
	for _, name := range names {
		if name != "tick" {
			t.Errorf("ticker event named %q, want \"tick\"", name)
		}
	}
	tk.Stop()
	k.RunUntil(100)
	if n != 3 {
		t.Errorf("stopped ticker kept firing: %d", n)
	}
}

type tracerFunc func(at Time, name string)

func (f tracerFunc) Event(at Time, name string) { f(at, name) }
