package core

import (
	"sort"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/metrics"
)

// UsageRow is one row of the usage-by-modality report.
type UsageRow struct {
	Modality job.Modality
	Jobs     int
	NUs      float64
	// AccountUsers counts distinct charging accounts — what naive
	// accounting sees (a gateway's whole community is one account).
	AccountUsers int
	// EndUsers counts distinct real people, folding in gateway end-user
	// attribute records where available. This is the number the modality
	// program exists to recover.
	EndUsers int
}

// Report is the measured usage breakdown.
type Report struct {
	Rows     []UsageRow
	TotalNUs float64
	// BySource tallies how many jobs were decided by each evidence tier.
	BySource map[Source]int
}

// Row returns the row for a modality (zero row if absent).
func (r *Report) Row(m job.Modality) UsageRow {
	for _, row := range r.Rows {
		if row.Modality == m {
			return row
		}
	}
	return UsageRow{Modality: m}
}

// BuildReport aggregates classification results into the usage report.
func BuildReport(c *accounting.Central, results []Result) *Report {
	jobs := c.Jobs()
	// Gateway end-user attribute index.
	gwUser := make(map[int64]string)
	for _, a := range c.GatewayAttrs() {
		gwUser[a.JobID] = a.GatewayID + "/" + a.GatewayUser
	}
	type agg struct {
		jobs     int
		nus      float64
		accounts map[string]bool
		people   map[string]bool
	}
	byMod := make(map[job.Modality]*agg)
	bySource := make(map[Source]int)
	total := 0.0
	for i := range jobs {
		r := &jobs[i]
		res := results[i]
		a := byMod[res.Modality]
		if a == nil {
			a = &agg{accounts: make(map[string]bool), people: make(map[string]bool)}
			byMod[res.Modality] = a
		}
		a.jobs++
		a.nus += r.NUs
		a.accounts[r.User] = true
		if p, ok := gwUser[r.JobID]; ok {
			a.people[p] = true
		} else {
			a.people[r.User] = true
		}
		bySource[res.Source]++
		total += r.NUs
	}
	rep := &Report{TotalNUs: total, BySource: bySource}
	// Canonical taxonomy order first, then anything else (e.g. unknown).
	emit := func(m job.Modality) {
		if a, ok := byMod[m]; ok {
			rep.Rows = append(rep.Rows, UsageRow{
				Modality: m, Jobs: a.jobs, NUs: a.nus,
				AccountUsers: len(a.accounts), EndUsers: len(a.people),
			})
			delete(byMod, m)
		}
	}
	for _, info := range Taxonomy() {
		emit(info.ID)
	}
	rest := make([]job.Modality, 0, len(byMod))
	for m := range byMod {
		rest = append(rest, m)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, m := range rest {
		emit(m)
	}
	return rep
}

// MechanismRow breaks usage down by submission mechanism — the measurement
// available *before* the modality framework: how jobs arrived, not why.
type MechanismRow struct {
	Mechanism    string
	Jobs         int
	NUs          float64
	AccountUsers int
}

// MechanismReport aggregates by the SubmitVia attribute ("login", "gram",
// "gateway", "metasched"; empty becomes "unknown").
func MechanismReport(c *accounting.Central) []MechanismRow {
	type agg struct {
		jobs     int
		nus      float64
		accounts map[string]bool
	}
	byMech := make(map[string]*agg)
	for _, r := range c.Jobs() {
		mech := r.SubmitVia
		if mech == "" {
			mech = "unknown"
		}
		a := byMech[mech]
		if a == nil {
			a = &agg{accounts: make(map[string]bool)}
			byMech[mech] = a
		}
		a.jobs++
		a.nus += r.NUs
		a.accounts[r.User] = true
	}
	mechs := make([]string, 0, len(byMech))
	for m := range byMech {
		mechs = append(mechs, m)
	}
	sort.Strings(mechs)
	out := make([]MechanismRow, 0, len(mechs))
	for _, m := range mechs {
		a := byMech[m]
		out = append(out, MechanismRow{Mechanism: m, Jobs: a.jobs, NUs: a.nus,
			AccountUsers: len(a.accounts)})
	}
	return out
}

// ServiceRow summarizes the service quality one modality received.
type ServiceRow struct {
	Modality    job.Modality
	Jobs        int
	MeanWaitS   float64
	MedianWaitS float64
	P95WaitS    float64
	KilledFrac  float64 // fraction terminated at the walltime limit
}

// ServiceReport computes per-modality queueing outcomes from classified
// records: the "are the modalities we want to encourage being served
// well?" question operators would ask next, once measurement exists.
func ServiceReport(c *accounting.Central, results []Result) []ServiceRow {
	jobs := c.Jobs()
	waits := make(map[job.Modality]*metrics.Sample)
	counts := make(map[job.Modality]int)
	killed := make(map[job.Modality]int)
	for i := range jobs {
		m := results[i].Modality
		if waits[m] == nil {
			waits[m] = &metrics.Sample{}
		}
		waits[m].Add(jobs[i].WaitSeconds())
		counts[m]++
		if jobs[i].ExitStatus == "killed" {
			killed[m]++
		}
	}
	var out []ServiceRow
	for _, info := range Taxonomy() {
		s, ok := waits[info.ID]
		if !ok {
			continue
		}
		out = append(out, ServiceRow{
			Modality:    info.ID,
			Jobs:        counts[info.ID],
			MeanWaitS:   s.Mean(),
			MedianWaitS: s.Median(),
			P95WaitS:    s.Percentile(95),
			KilledFrac:  float64(killed[info.ID]) / float64(counts[info.ID]),
		})
	}
	return out
}

// FieldRow is one row of the usage-by-science-field report.
type FieldRow struct {
	Field    string
	Jobs     int
	NUs      float64
	Projects int
}

// FieldReport aggregates usage by the allocation's field of science —
// the "who is the CI serving" breakdown program officers asked for.
// Records without a field land under "unspecified".
func FieldReport(c *accounting.Central) []FieldRow {
	type agg struct {
		jobs     int
		nus      float64
		projects map[string]bool
	}
	byField := make(map[string]*agg)
	for _, r := range c.Jobs() {
		f := r.ScienceField
		if f == "" {
			f = "unspecified"
		}
		a := byField[f]
		if a == nil {
			a = &agg{projects: make(map[string]bool)}
			byField[f] = a
		}
		a.jobs++
		a.nus += r.NUs
		a.projects[r.Project] = true
	}
	fields := make([]string, 0, len(byField))
	for f := range byField {
		fields = append(fields, f)
	}
	// Sort by NUs descending (usage reports lead with the big consumers),
	// ties by name for determinism.
	sort.Slice(fields, func(i, j int) bool {
		a, b := byField[fields[i]], byField[fields[j]]
		if a.nus != b.nus {
			return a.nus > b.nus
		}
		return fields[i] < fields[j]
	})
	out := make([]FieldRow, 0, len(fields))
	for _, f := range fields {
		a := byField[f]
		out = append(out, FieldRow{Field: f, Jobs: a.jobs, NUs: a.nus,
			Projects: len(a.projects)})
	}
	return out
}

// Validate compares classifications against the generator ground truth
// carried in the records, returning a confusion matrix over the taxonomy.
// This is the experiment the simulation substrate makes possible.
func Validate(c *accounting.Central, results []Result) *metrics.Confusion {
	conf := metrics.NewConfusion(ModalityLabels())
	jobs := c.Jobs()
	for i := range jobs {
		truth := jobs[i].TruthModality
		if truth == "" {
			truth = string(job.ModUnknown)
		}
		conf.Observe(truth, string(results[i].Modality))
	}
	return conf
}

// GatewayVisibility quantifies the headline gateway measurement: how many
// real people are hidden behind community accounts, versus how many the
// attribute records recover.
type GatewayVisibility struct {
	CommunityAccounts int // distinct gateway community accounts seen
	RecoveredEndUsers int // distinct end users visible via attributes
	GatewayJobs       int
	AttributedJobs    int
}

// Overlap describes how the user population spans modalities: the count
// of users per number-of-modalities-used, and the pairwise overlap matrix.
// Users pursuing several modalities are exactly the multi-objective users
// the modality program wanted to understand.
type Overlap struct {
	// ByModalityCount[k] = users active in exactly k modalities (k ≥ 1).
	ByModalityCount map[int]int
	// Pairs[a][b] = users active in both modality a and b (a ≠ b); the
	// diagonal holds each modality's total user count.
	Pairs map[job.Modality]map[job.Modality]int
}

// MeasureOverlap computes modality overlap per effective user: gateway
// end users where attributes exist, charging accounts otherwise.
func MeasureOverlap(c *accounting.Central, results []Result) Overlap {
	jobs := c.Jobs()
	gwUser := make(map[int64]string)
	for _, a := range c.GatewayAttrs() {
		gwUser[a.JobID] = a.GatewayID + "/" + a.GatewayUser
	}
	perUser := make(map[string]map[job.Modality]bool)
	for i := range jobs {
		u := jobs[i].User
		if p, ok := gwUser[jobs[i].JobID]; ok {
			u = p
		}
		if perUser[u] == nil {
			perUser[u] = make(map[job.Modality]bool)
		}
		perUser[u][results[i].Modality] = true
	}
	ov := Overlap{
		ByModalityCount: make(map[int]int),
		Pairs:           make(map[job.Modality]map[job.Modality]int),
	}
	add := func(a, b job.Modality) {
		if ov.Pairs[a] == nil {
			ov.Pairs[a] = make(map[job.Modality]int)
		}
		ov.Pairs[a][b]++
	}
	for _, mods := range perUser {
		ov.ByModalityCount[len(mods)]++
		list := make([]job.Modality, 0, len(mods))
		for m := range mods {
			list = append(list, m)
		}
		for _, a := range list {
			for _, b := range list {
				add(a, b)
			}
		}
	}
	return ov
}

// GatewayRow summarizes one gateway's activity.
type GatewayRow struct {
	GatewayID      string
	Jobs           int
	NUs            float64
	EndUsers       int
	AttributedFrac float64
}

// GatewayReport breaks gateway usage down per gateway, combining job
// records with end-user attribute records.
func GatewayReport(c *accounting.Central) []GatewayRow {
	type agg struct {
		jobs       int
		nus        float64
		people     map[string]bool
		attributed int
	}
	byGW := make(map[string]*agg)
	get := func(id string) *agg {
		a := byGW[id]
		if a == nil {
			a = &agg{people: make(map[string]bool)}
			byGW[id] = a
		}
		return a
	}
	attributed := make(map[int64]bool)
	for _, r := range c.GatewayAttrs() {
		get(r.GatewayID).people[r.GatewayUser] = true
		attributed[r.JobID] = true
	}
	for _, r := range c.Jobs() {
		if r.GatewayID == "" {
			continue
		}
		a := get(r.GatewayID)
		a.jobs++
		a.nus += r.NUs
		if attributed[r.JobID] {
			a.attributed++
		}
	}
	ids := make([]string, 0, len(byGW))
	for id := range byGW {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]GatewayRow, 0, len(ids))
	for _, id := range ids {
		a := byGW[id]
		frac := 0.0
		if a.jobs > 0 {
			frac = float64(a.attributed) / float64(a.jobs)
		}
		out = append(out, GatewayRow{GatewayID: id, Jobs: a.jobs, NUs: a.nus,
			EndUsers: len(a.people), AttributedFrac: frac})
	}
	return out
}

// MeasureGatewayVisibility computes gateway end-user visibility from the
// central database.
func MeasureGatewayVisibility(c *accounting.Central) GatewayVisibility {
	var v GatewayVisibility
	accounts := make(map[string]bool)
	people := make(map[string]bool)
	attributed := make(map[int64]bool)
	for _, a := range c.GatewayAttrs() {
		people[a.GatewayID+"/"+a.GatewayUser] = true
		attributed[a.JobID] = true
	}
	for _, r := range c.Jobs() {
		if r.GatewayID == "" && r.SubmitVia != "gateway" {
			continue
		}
		v.GatewayJobs++
		accounts[r.User] = true
		if attributed[r.JobID] {
			v.AttributedJobs++
		}
	}
	v.CommunityAccounts = len(accounts)
	v.RecoveredEndUsers = len(people)
	return v
}
