package core

import "github.com/tgsim/tgmod/internal/report"

// ModalityTable renders a usage report as the canonical usage-by-modality
// table. It is the single rendering path shared by live tgsim runs,
// -modality-out, -replay, and the observatory daemon's per-run final
// reports, so every byte-equivalence check (replay, push) compares
// identical bytes by construction.
func ModalityTable(rep *Report) *report.Table {
	mod := report.NewTable("Usage by measured modality",
		"modality", "jobs", "NUs", "NU share", "accounts", "end users")
	for _, row := range rep.Rows {
		mod.AddRowf(string(row.Modality), row.Jobs, row.NUs,
			report.Percent(row.NUs/rep.TotalNUs), row.AccountUsers, row.EndUsers)
	}
	return mod
}
