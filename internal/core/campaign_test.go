package core

import (
	"testing"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/job"
)

func TestCampaignReportTaggedPerfect(t *testing.T) {
	// Two tagged ensembles: each fully recovered as one group.
	var jobs []accounting.JobRecord
	id := int64(0)
	for c := 0; c < 2; c++ {
		for m := 0; m < 4; m++ {
			id++
			camp := []string{"ens-A", "ens-B"}[c]
			jobs = append(jobs, rec(id, func(r *accounting.JobRecord) {
				r.EnsembleID = camp
				r.TruthModality = string(job.ModEnsemble)
				r.TruthCampaign = camp
			}))
		}
	}
	c := central(t, jobs, nil, nil)
	stats := CampaignReport(c, classify(t, c))
	var ens CampaignStats
	for _, s := range stats {
		if s.Modality == job.ModEnsemble {
			ens = s
		}
	}
	if ens.TrueCampaigns != 2 || ens.MeasuredCampaigns != 2 || ens.RecoveredCampaigns != 2 {
		t.Errorf("ensemble stats = %+v", ens)
	}
	if ens.Fragmentation != 1 {
		t.Errorf("fragmentation = %v, want 1", ens.Fragmentation)
	}
}

func TestCampaignReportInferredBurst(t *testing.T) {
	// One untagged sweep of 6 identical burst jobs: inference should
	// recover it as one campaign.
	var jobs []accounting.JobRecord
	for i := 0; i < 6; i++ {
		i := i
		jobs = append(jobs, rec(int64(i+1), func(r *accounting.JobRecord) {
			r.Name = "sweep"
			r.Cores = 4
			r.SubmitTime = float64(i) * 30
			r.TruthModality = string(job.ModEnsemble)
			r.TruthCampaign = "true-ens-1"
		}))
	}
	c := central(t, jobs, nil, nil)
	stats := CampaignReport(c, classify(t, c))
	for _, s := range stats {
		if s.Modality != job.ModEnsemble {
			continue
		}
		if s.TrueCampaigns != 1 || s.RecoveredCampaigns != 1 {
			t.Errorf("inferred recovery failed: %+v", s)
		}
	}
}

func TestCampaignReportUnrecovered(t *testing.T) {
	// An untagged workflow whose stages are hours apart: not recovered.
	var jobs []accounting.JobRecord
	tm := 0.0
	for i := 0; i < 3; i++ {
		i := i
		jobs = append(jobs, rec(int64(i+1), func(r *accounting.JobRecord) {
			r.Name = "stage"
			r.SubmitTime = tm
			r.StartTime = tm + 10
			r.EndTime = tm + 600
			r.TruthModality = string(job.ModWorkflow)
			r.TruthCampaign = "wf-lost"
		}))
		tm += 20000 // hours of slack: no chain signature
	}
	c := central(t, jobs, nil, nil)
	stats := CampaignReport(c, classify(t, c))
	for _, s := range stats {
		if s.Modality != job.ModWorkflow {
			continue
		}
		if s.TrueCampaigns != 1 || s.RecoveredCampaigns != 0 {
			t.Errorf("lost workflow graded wrong: %+v", s)
		}
	}
}
