package core

import (
	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/job"
)

// CampaignStats grades campaign-level recovery for one modality: beyond
// per-job labels, did the measurement framework reconstruct the *groups* —
// the sweeps and workflow instances — that users actually ran? Operators
// need campaign counts ("how many parameter studies ran last quarter"),
// which per-job accuracy alone does not give.
type CampaignStats struct {
	Modality job.Modality
	// TrueCampaigns is the number of distinct generator campaigns whose
	// jobs appear in the records.
	TrueCampaigns int
	// MeasuredCampaigns is the number of distinct campaign groups the
	// classifier produced (tagged or inferred).
	MeasuredCampaigns int
	// RecoveredCampaigns counts true campaigns for which at least half the
	// member jobs landed in a single measured campaign (majority match).
	RecoveredCampaigns int
	// Fragmentation is the mean number of measured groups a true
	// campaign's jobs were split across (1.0 = perfect grouping).
	Fragmentation float64
}

// CampaignReport computes campaign-recovery statistics for ensemble and
// workflow modalities from classified records. Ground truth comes from the
// records' generator labels, used only for grading.
func CampaignReport(c *accounting.Central, results []Result) []CampaignStats {
	jobs := c.Jobs()
	type key struct {
		mod job.Modality
		id  string
	}
	// true campaign → measured campaign id → member count
	members := make(map[key]map[string]int)
	measuredSet := make(map[job.Modality]map[string]bool)
	for i := range jobs {
		truthMod := job.Modality(jobs[i].TruthModality)
		if truthMod != job.ModEnsemble && truthMod != job.ModWorkflow {
			continue
		}
		if jobs[i].TruthCampaign == "" {
			continue
		}
		k := key{truthMod, jobs[i].TruthCampaign}
		if members[k] == nil {
			members[k] = make(map[string]int)
		}
		members[k][results[i].CampaignID]++ // "" groups unmeasured members
		if results[i].CampaignID != "" {
			if measuredSet[truthMod] == nil {
				measuredSet[truthMod] = make(map[string]bool)
			}
			measuredSet[truthMod][results[i].CampaignID] = true
		}
	}
	var out []CampaignStats
	for _, mod := range []job.Modality{job.ModEnsemble, job.ModWorkflow} {
		st := CampaignStats{Modality: mod}
		fragSum := 0.0
		for k, groups := range members {
			if k.mod != mod {
				continue
			}
			st.TrueCampaigns++
			total, best, distinct := 0, 0, 0
			for id, n := range groups {
				total += n
				if id == "" {
					continue
				}
				distinct++
				if n > best {
					best = n
				}
			}
			if distinct == 0 {
				distinct = 1 // fully unmeasured: one (empty) group
			}
			fragSum += float64(distinct)
			if best*2 >= total {
				st.RecoveredCampaigns++
			}
		}
		st.MeasuredCampaigns = len(measuredSet[mod])
		if st.TrueCampaigns > 0 {
			st.Fragmentation = fragSum / float64(st.TrueCampaigns)
		}
		out = append(out, st)
	}
	return out
}
