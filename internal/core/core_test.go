package core

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/job"
)

func TestTaxonomyCoversAllModalities(t *testing.T) {
	tax := Taxonomy()
	if len(tax) != len(job.AllModalities) {
		t.Fatalf("taxonomy has %d entries, want %d", len(tax), len(job.AllModalities))
	}
	seen := map[job.Modality]bool{}
	for _, info := range tax {
		if seen[info.ID] {
			t.Errorf("duplicate taxonomy entry %q", info.ID)
		}
		seen[info.ID] = true
		if info.Title == "" || info.Objective == "" {
			t.Errorf("taxonomy entry %q missing title/objective", info.ID)
		}
	}
	for _, m := range job.AllModalities {
		if !seen[m] {
			t.Errorf("modality %q missing from taxonomy", m)
		}
	}
}

func TestInfoFor(t *testing.T) {
	info, ok := InfoFor(job.ModGateway)
	if !ok || info.Source != SourceAttribute {
		t.Errorf("InfoFor(gateway) = %+v,%v", info, ok)
	}
	if _, ok := InfoFor("nope"); ok {
		t.Error("InfoFor accepted unknown modality")
	}
}

func TestSourceString(t *testing.T) {
	if SourceAccounting.String() != "accounting" ||
		SourceAttribute.String() != "attribute" ||
		SourceInference.String() != "inference" ||
		Source(9).String() != "unknown" {
		t.Error("source names wrong")
	}
}

// central builds a database from records with sequenced packets.
func central(t *testing.T, jobs []accounting.JobRecord, attrs []accounting.GatewayAttrRecord,
	transfers []accounting.TransferRecord) *accounting.Central {
	t.Helper()
	c := accounting.NewCentral()
	err := c.Ingest(&accounting.Packet{Site: "s", Seq: 1, Jobs: jobs,
		GatewayAttrs: attrs, Transfers: transfers})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func rec(id int64, mutate func(*accounting.JobRecord)) accounting.JobRecord {
	r := accounting.JobRecord{
		JobID: id, Name: "job", User: "u1", Project: "p", Site: "s",
		Machine: "m", Cores: 16, SubmitTime: float64(id) * 10000,
		StartTime: float64(id)*10000 + 100, EndTime: float64(id)*10000 + 1100,
		WallSeconds: 1000, CoreSeconds: 16000, NUs: 10, QOS: "normal",
		ExitStatus: "completed",
	}
	if mutate != nil {
		mutate(&r)
	}
	return r
}

func classify(t *testing.T, c *accounting.Central) []Result {
	t.Helper()
	return NewClassifier(Config{LargestCores: 1024}).Classify(c)
}

func TestDirectEvidencePrecedence(t *testing.T) {
	jobs := []accounting.JobRecord{
		rec(1, func(r *accounting.JobRecord) { r.QOS = "urgent" }),
		rec(2, func(r *accounting.JobRecord) { r.QOS = "interactive" }),
		rec(3, func(r *accounting.JobRecord) { r.GatewayID = "nanohub"; r.SubmitVia = "gateway" }),
		rec(4, func(r *accounting.JobRecord) { r.BrokerJobID = "b-4" }),
		rec(5, func(r *accounting.JobRecord) { r.WorkflowID = "wf-1" }),
		rec(6, func(r *accounting.JobRecord) { r.EnsembleID = "ens-1" }),
		rec(7, nil), // plain capacity batch
		rec(8, func(r *accounting.JobRecord) { r.Cores = 1024 }), // capability
		rec(9, func(r *accounting.JobRecord) { r.CoAllocID = "co-1" }),
	}
	c := central(t, jobs, nil, nil)
	res := classify(t, c)
	want := []job.Modality{
		job.ModUrgent, job.ModInteractive, job.ModGateway, job.ModMetascheduled,
		job.ModWorkflow, job.ModEnsemble, job.ModBatchCapacity,
		job.ModBatchCapability, job.ModMetascheduled,
	}
	for i, w := range want {
		if res[i].Modality != w {
			t.Errorf("job %d classified %q, want %q", i+1, res[i].Modality, w)
		}
	}
	// Attribute-tier evidence recorded as such.
	if res[2].Source != SourceAttribute || res[0].Source != SourceAccounting {
		t.Errorf("sources wrong: %+v %+v", res[2], res[0])
	}
	if res[4].CampaignID != "wf-1" || res[5].CampaignID != "ens-1" {
		t.Error("campaign IDs not carried")
	}
}

func TestGatewayByAttrRecordOnly(t *testing.T) {
	// Job carries no gateway fields, but an attribute record references it.
	jobs := []accounting.JobRecord{rec(1, nil)}
	attrs := []accounting.GatewayAttrRecord{{GatewayID: "g", GatewayUser: "alice", JobID: 1}}
	res := classify(t, central(t, jobs, attrs, nil))
	if res[0].Modality != job.ModGateway {
		t.Errorf("classified %q, want gateway (via attribute record)", res[0].Modality)
	}
}

func TestDataCentricByTransfers(t *testing.T) {
	jobs := []accounting.JobRecord{rec(1, nil), rec(2, nil)}
	transfers := []accounting.TransferRecord{
		{TransferID: 1, JobID: 1, Bytes: 6 << 30}, // 6 GB staged for job 1
		{TransferID: 2, JobID: 2, Bytes: 1 << 20}, // 1 MB for job 2
	}
	res := classify(t, central(t, jobs, nil, transfers))
	if res[0].Modality != job.ModDataCentric {
		t.Errorf("big-staging job classified %q, want data-centric", res[0].Modality)
	}
	if res[1].Modality != job.ModBatchCapacity {
		t.Errorf("small-staging job classified %q, want batch-capacity", res[1].Modality)
	}
}

func TestEnsembleInference(t *testing.T) {
	// 8 identical jobs submitted minutes apart by one user, untagged.
	var jobs []accounting.JobRecord
	for i := 0; i < 8; i++ {
		i := i
		jobs = append(jobs, rec(int64(i+1), func(r *accounting.JobRecord) {
			r.Name = "sweep"
			r.Cores = 4
			r.SubmitTime = float64(i) * 60
			r.StartTime = r.SubmitTime + 10
			r.EndTime = r.StartTime + 500
		}))
	}
	// Plus one unrelated job by another user.
	jobs = append(jobs, rec(100, func(r *accounting.JobRecord) { r.User = "other" }))
	res := classify(t, central(t, jobs, nil, nil))
	for i := 0; i < 8; i++ {
		if res[i].Modality != job.ModEnsemble {
			t.Errorf("sweep member %d classified %q, want ensemble", i, res[i].Modality)
		}
		if res[i].Source != SourceInference {
			t.Errorf("sweep member %d source %v, want inference", i, res[i].Source)
		}
		if res[i].CampaignID != res[0].CampaignID {
			t.Error("sweep members not grouped into one campaign")
		}
	}
	if res[8].Modality == job.ModEnsemble {
		t.Error("unrelated job swept into ensemble")
	}
}

func TestEnsembleInferenceRespectsWindow(t *testing.T) {
	// Same name/cores but a day apart: not a burst.
	var jobs []accounting.JobRecord
	for i := 0; i < 6; i++ {
		i := i
		jobs = append(jobs, rec(int64(i+1), func(r *accounting.JobRecord) {
			r.Name = "spread"
			r.Cores = 4
			r.SubmitTime = float64(i) * 86400
		}))
	}
	res := classify(t, central(t, jobs, nil, nil))
	for i := range jobs {
		if res[i].Modality == job.ModEnsemble {
			t.Errorf("day-spread job %d inferred as ensemble", i)
		}
	}
}

func TestChainInference(t *testing.T) {
	// 4 jobs where each is submitted 60 s after the previous ends, with
	// different names (so ensemble inference cannot claim them).
	var jobs []accounting.JobRecord
	tm := 0.0
	for i := 0; i < 4; i++ {
		i := i
		jobs = append(jobs, rec(int64(i+1), func(r *accounting.JobRecord) {
			r.Name = fmt.Sprintf("stage-%d", i)
			r.SubmitTime = tm
			r.StartTime = tm + 30
			r.EndTime = tm + 30 + 600
		}))
		tm = tm + 30 + 600 + 60 // next submitted 60s after this ends
	}
	res := classify(t, central(t, jobs, nil, nil))
	for i := range jobs {
		if res[i].Modality != job.ModWorkflow {
			t.Errorf("chain link %d classified %q, want workflow", i, res[i].Modality)
		}
		if res[i].Source != SourceInference {
			t.Errorf("chain link %d source %v, want inference", i, res[i].Source)
		}
	}
}

func TestChainInferenceNeedsTightGaps(t *testing.T) {
	var jobs []accounting.JobRecord
	tm := 0.0
	for i := 0; i < 4; i++ {
		i := i
		jobs = append(jobs, rec(int64(i+1), func(r *accounting.JobRecord) {
			r.Name = fmt.Sprintf("stage-%d", i)
			r.SubmitTime = tm
			r.StartTime = tm + 30
			r.EndTime = tm + 630
		}))
		tm += 630 + 7200 // two hours of thinking between stages: human, not engine
	}
	res := classify(t, central(t, jobs, nil, nil))
	for i := range jobs {
		if res[i].Modality == job.ModWorkflow {
			t.Errorf("slow chain link %d inferred as workflow", i)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.CapabilityFrac != 0.5 || cfg.EnsembleMinJobs != 5 ||
		cfg.EnsembleWindow != 3600 || cfg.ChainMinLinks != 3 ||
		cfg.ChainSlack != 300 || cfg.DataBytesThreshold != 5<<30 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	// Explicit values survive.
	cfg2 := Config{EnsembleMinJobs: 10}.withDefaults()
	if cfg2.EnsembleMinJobs != 10 {
		t.Error("explicit value overwritten")
	}
}

func TestBuildReport(t *testing.T) {
	jobs := []accounting.JobRecord{
		rec(1, func(r *accounting.JobRecord) { r.QOS = "urgent"; r.NUs = 5 }),
		rec(2, func(r *accounting.JobRecord) { r.GatewayID = "g"; r.User = "community"; r.NUs = 1 }),
		rec(3, func(r *accounting.JobRecord) { r.GatewayID = "g"; r.User = "community"; r.NUs = 1 }),
		rec(4, func(r *accounting.JobRecord) { r.NUs = 100 }),
	}
	attrs := []accounting.GatewayAttrRecord{
		{GatewayID: "g", GatewayUser: "alice", JobID: 2},
		{GatewayID: "g", GatewayUser: "bob", JobID: 3},
	}
	c := central(t, jobs, attrs, nil)
	res := classify(t, c)
	rep := BuildReport(c, res)
	if rep.TotalNUs != 107 {
		t.Errorf("TotalNUs = %v, want 107", rep.TotalNUs)
	}
	gw := rep.Row(job.ModGateway)
	if gw.Jobs != 2 || gw.NUs != 2 {
		t.Errorf("gateway row = %+v", gw)
	}
	// One community account, two real people.
	if gw.AccountUsers != 1 || gw.EndUsers != 2 {
		t.Errorf("gateway users = %d accounts / %d people, want 1/2",
			gw.AccountUsers, gw.EndUsers)
	}
	if rep.Row(job.ModUrgent).NUs != 5 {
		t.Errorf("urgent row = %+v", rep.Row(job.ModUrgent))
	}
	if rep.Row("never-seen").Jobs != 0 {
		t.Error("missing row not zero")
	}
	if rep.BySource[SourceAccounting] == 0 || rep.BySource[SourceAttribute] == 0 {
		t.Errorf("BySource = %v", rep.BySource)
	}
	// Rows come out in taxonomy order.
	if len(rep.Rows) < 2 || rep.Rows[0].Modality == job.ModGateway {
		ordered := true
		last := -1
		for _, row := range rep.Rows {
			pos := -1
			for i, info := range Taxonomy() {
				if info.ID == row.Modality {
					pos = i
				}
			}
			if pos < last {
				ordered = false
			}
			last = pos
		}
		if !ordered {
			t.Error("rows not in taxonomy order")
		}
	}
}

func TestMechanismReport(t *testing.T) {
	jobs := []accounting.JobRecord{
		rec(1, func(r *accounting.JobRecord) { r.SubmitVia = "login"; r.NUs = 10 }),
		rec(2, func(r *accounting.JobRecord) { r.SubmitVia = "login"; r.NUs = 20; r.User = "u2" }),
		rec(3, func(r *accounting.JobRecord) { r.SubmitVia = "gateway"; r.NUs = 1 }),
		rec(4, func(r *accounting.JobRecord) { r.SubmitVia = "" }),
	}
	rows := MechanismReport(central(t, jobs, nil, nil))
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	// Sorted: gateway, login, unknown.
	if rows[0].Mechanism != "gateway" || rows[1].Mechanism != "login" || rows[2].Mechanism != "unknown" {
		t.Errorf("mechanism order: %+v", rows)
	}
	if rows[1].Jobs != 2 || rows[1].NUs != 30 || rows[1].AccountUsers != 2 {
		t.Errorf("login row = %+v", rows[1])
	}
}

func TestValidatePerfectOnDirectEvidence(t *testing.T) {
	jobs := []accounting.JobRecord{
		rec(1, func(r *accounting.JobRecord) { r.QOS = "urgent"; r.TruthModality = "urgent" }),
		rec(2, func(r *accounting.JobRecord) { r.GatewayID = "g"; r.TruthModality = "gateway" }),
		rec(3, func(r *accounting.JobRecord) { r.TruthModality = "batch-capacity" }),
	}
	c := central(t, jobs, nil, nil)
	conf := Validate(c, classify(t, c))
	if conf.Accuracy() != 1 {
		t.Errorf("accuracy = %v, want 1 with full direct evidence", conf.Accuracy())
	}
	if conf.Total() != 3 {
		t.Errorf("Total = %d", conf.Total())
	}
}

func TestMeasureGatewayVisibility(t *testing.T) {
	jobs := []accounting.JobRecord{
		rec(1, func(r *accounting.JobRecord) { r.GatewayID = "g1"; r.User = "c1" }),
		rec(2, func(r *accounting.JobRecord) { r.GatewayID = "g1"; r.User = "c1" }),
		rec(3, func(r *accounting.JobRecord) { r.GatewayID = "g2"; r.User = "c2" }),
		rec(4, nil), // not a gateway job
	}
	attrs := []accounting.GatewayAttrRecord{
		{GatewayID: "g1", GatewayUser: "alice", JobID: 1},
		{GatewayID: "g1", GatewayUser: "bob", JobID: 2},
	}
	v := MeasureGatewayVisibility(central(t, jobs, attrs, nil))
	if v.GatewayJobs != 3 || v.AttributedJobs != 2 {
		t.Errorf("jobs = %d attributed = %d", v.GatewayJobs, v.AttributedJobs)
	}
	if v.CommunityAccounts != 2 || v.RecoveredEndUsers != 2 {
		t.Errorf("accounts = %d people = %d", v.CommunityAccounts, v.RecoveredEndUsers)
	}
}

// TestClassifierNeverReadsTruth statically enforces the measurement/truth
// separation: classify.go must not mention the TruthModality field.
func TestClassifierNeverReadsTruth(t *testing.T) {
	src, err := os.ReadFile("classify.go")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(src), "TruthModality") {
		t.Error("classify.go references TruthModality; classifiers must not see ground truth")
	}
}

func TestFieldReport(t *testing.T) {
	jobs := []accounting.JobRecord{
		rec(1, func(r *accounting.JobRecord) { r.ScienceField = "physics"; r.NUs = 100; r.Project = "p1" }),
		rec(2, func(r *accounting.JobRecord) { r.ScienceField = "physics"; r.NUs = 50; r.Project = "p2" }),
		rec(3, func(r *accounting.JobRecord) { r.ScienceField = "chemistry"; r.NUs = 70; r.Project = "p3" }),
		rec(4, func(r *accounting.JobRecord) { r.ScienceField = ""; r.NUs = 1; r.Project = "p4" }),
	}
	rows := FieldReport(central(t, jobs, nil, nil))
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// Sorted by NUs descending: physics (150), chemistry (70), unspecified (1).
	if rows[0].Field != "physics" || rows[0].NUs != 150 || rows[0].Jobs != 2 || rows[0].Projects != 2 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[1].Field != "chemistry" || rows[2].Field != "unspecified" {
		t.Errorf("order wrong: %+v", rows)
	}
}

func TestServiceReport(t *testing.T) {
	jobs := []accounting.JobRecord{
		rec(1, func(r *accounting.JobRecord) {
			r.QOS = "urgent"
			r.SubmitTime, r.StartTime = 0, 5 // 5s wait
		}),
		rec(2, func(r *accounting.JobRecord) {
			r.SubmitTime, r.StartTime = 0, 1000
			r.ExitStatus = "killed"
		}),
		rec(3, func(r *accounting.JobRecord) {
			r.SubmitTime, r.StartTime = 0, 3000
		}),
	}
	c := central(t, jobs, nil, nil)
	rows := ServiceReport(c, classify(t, c))
	byMod := map[job.Modality]ServiceRow{}
	for _, r := range rows {
		byMod[r.Modality] = r
	}
	u := byMod[job.ModUrgent]
	if u.Jobs != 1 || u.MeanWaitS != 5 || u.KilledFrac != 0 {
		t.Errorf("urgent row = %+v", u)
	}
	b := byMod[job.ModBatchCapacity]
	if b.Jobs != 2 || b.MeanWaitS != 2000 || b.KilledFrac != 0.5 {
		t.Errorf("batch row = %+v", b)
	}
	// Rows come out in taxonomy order and only for seen modalities.
	if len(rows) != 2 {
		t.Errorf("rows = %d, want 2", len(rows))
	}
}

func TestGatewayReport(t *testing.T) {
	jobs := []accounting.JobRecord{
		rec(1, func(r *accounting.JobRecord) { r.GatewayID = "g1"; r.NUs = 5 }),
		rec(2, func(r *accounting.JobRecord) { r.GatewayID = "g1"; r.NUs = 3 }),
		rec(3, func(r *accounting.JobRecord) { r.GatewayID = "g2"; r.NUs = 2 }),
		rec(4, nil), // not a gateway job
	}
	attrs := []accounting.GatewayAttrRecord{
		{GatewayID: "g1", GatewayUser: "alice", JobID: 1},
		{GatewayID: "g2", GatewayUser: "bob", JobID: 3},
		{GatewayID: "g2", GatewayUser: "carol", JobID: 99}, // attr without job record
	}
	rows := GatewayReport(central(t, jobs, attrs, nil))
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	g1 := rows[0]
	if g1.GatewayID != "g1" || g1.Jobs != 2 || g1.NUs != 8 || g1.EndUsers != 1 {
		t.Errorf("g1 = %+v", g1)
	}
	if g1.AttributedFrac != 0.5 {
		t.Errorf("g1 attributed = %v, want 0.5", g1.AttributedFrac)
	}
	g2 := rows[1]
	if g2.EndUsers != 2 || g2.Jobs != 1 {
		t.Errorf("g2 = %+v", g2)
	}
}

func TestMeasureOverlap(t *testing.T) {
	jobs := []accounting.JobRecord{
		rec(1, func(r *accounting.JobRecord) { r.User = "a"; r.QOS = "urgent" }),
		rec(2, func(r *accounting.JobRecord) { r.User = "a" }), // batch-capacity
		rec(3, func(r *accounting.JobRecord) { r.User = "b" }), // batch only
		rec(4, func(r *accounting.JobRecord) { r.User = "comm"; r.GatewayID = "g" }),
	}
	attrs := []accounting.GatewayAttrRecord{{GatewayID: "g", GatewayUser: "carol", JobID: 4}}
	c := central(t, jobs, attrs, nil)
	ov := MeasureOverlap(c, classify(t, c))
	// a: 2 modalities; b: 1; g/carol: 1.
	if ov.ByModalityCount[1] != 2 || ov.ByModalityCount[2] != 1 {
		t.Errorf("ByModalityCount = %v", ov.ByModalityCount)
	}
	if ov.Pairs[job.ModUrgent][job.ModBatchCapacity] != 1 {
		t.Errorf("urgent∩batch = %d, want 1", ov.Pairs[job.ModUrgent][job.ModBatchCapacity])
	}
	// Diagonal = per-modality user totals.
	if ov.Pairs[job.ModBatchCapacity][job.ModBatchCapacity] != 2 {
		t.Errorf("batch total = %d, want 2", ov.Pairs[job.ModBatchCapacity][job.ModBatchCapacity])
	}
	if ov.Pairs[job.ModGateway][job.ModGateway] != 1 {
		t.Errorf("gateway total = %d, want 1", ov.Pairs[job.ModGateway][job.ModGateway])
	}
}

func TestEvidenceTags(t *testing.T) {
	jobs := []accounting.JobRecord{
		rec(1, func(r *accounting.JobRecord) { r.QOS = "urgent" }),
		rec(2, func(r *accounting.JobRecord) { r.QOS = "interactive" }),
		rec(3, func(r *accounting.JobRecord) { r.GatewayID = "nanohub" }),
		rec(4, func(r *accounting.JobRecord) { r.SubmitVia = "gateway" }),
		rec(5, func(r *accounting.JobRecord) { r.CoAllocID = "co-1" }),
		rec(6, func(r *accounting.JobRecord) { r.BrokerJobID = "b-1" }),
		rec(7, func(r *accounting.JobRecord) { r.SubmitVia = "metasched" }),
		rec(8, func(r *accounting.JobRecord) { r.WorkflowID = "wf-1" }),
		rec(9, func(r *accounting.JobRecord) { r.EnsembleID = "ens-1" }),
		rec(10, nil),
		rec(11, func(r *accounting.JobRecord) { r.Cores = 1024 }),
	}
	attrs := []accounting.GatewayAttrRecord{{GatewayID: "g", GatewayUser: "alice", JobID: 10}}
	res := classify(t, central(t, jobs, attrs, nil))
	want := []string{
		EvQOSUrgent, EvQOSInteractive, EvGatewayID, EvSubmitVia,
		EvCoAllocID, EvBrokerID, EvSubmitVia, EvWorkflowID, EvEnsembleID,
		EvGatewayUserRec, EvCapabilitySize,
	}
	for i, w := range want {
		if res[i].Evidence != w {
			t.Errorf("job %d evidence %q, want %q", i+1, res[i].Evidence, w)
		}
	}
}

func TestEvidenceInferenceAndDefault(t *testing.T) {
	// A burst of 5 identical submissions close together → infer:burst;
	// one straggler far outside the window → acct:default.
	var jobs []accounting.JobRecord
	for i := 0; i < 5; i++ {
		i := i
		jobs = append(jobs, rec(int64(i+1), func(r *accounting.JobRecord) {
			r.SubmitTime = float64(i) * 60
			r.StartTime = r.SubmitTime + 10
			r.EndTime = r.StartTime + 100
		}))
	}
	jobs = append(jobs, rec(6, func(r *accounting.JobRecord) {
		r.Name = "other"
		r.SubmitTime = 1e7
		r.StartTime = r.SubmitTime + 10
		r.EndTime = r.StartTime + 100
	}))
	res := classify(t, central(t, jobs, nil, nil))
	for i := 0; i < 5; i++ {
		if res[i].Evidence != EvBurst {
			t.Errorf("burst job %d evidence %q, want %q", i+1, res[i].Evidence, EvBurst)
		}
	}
	if res[5].Evidence != EvDefaultCapacity {
		t.Errorf("straggler evidence %q, want %q", res[5].Evidence, EvDefaultCapacity)
	}
}
