package core

import (
	"fmt"
	"sort"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/job"
)

// Result is the classifier's decision for one job record.
type Result struct {
	JobID    int64
	Modality job.Modality
	// Source records which evidence tier decided the classification.
	Source Source
	// Evidence names the specific rule that fired within the tier, e.g.
	// "attr:gateway-id" or "infer:burst". Tags are stable identifiers used
	// by modreport -explain.
	Evidence string
	// Inferred campaign grouping (for ensemble/workflow inference).
	CampaignID string
}

// Evidence tags, one per decision branch of Classify. The prefix names the
// tier ("qos"/"attr"/"acct" are direct evidence, "infer" is behavioral).
const (
	EvQOSUrgent       = "qos:urgent"
	EvQOSInteractive  = "qos:interactive"
	EvGatewayID       = "attr:gateway-id"
	EvSubmitVia       = "attr:submit-via"
	EvGatewayUserRec  = "attr:gateway-user-record"
	EvCoAllocID       = "attr:coalloc-id"
	EvBrokerID        = "attr:broker-id"
	EvWorkflowID      = "attr:workflow-id"
	EvEnsembleID      = "attr:ensemble-id"
	EvStagedBytes     = "acct:staged-bytes"
	EvBurst           = "infer:burst"
	EvChain           = "infer:chain"
	EvCapabilitySize  = "acct:capability-size"
	EvDefaultCapacity = "acct:default"
)

// Config tunes the classifier. Zero values are replaced by defaults.
type Config struct {
	// CapabilityFrac: a job using at least this fraction of the largest
	// machine's cores is capability-class. Default 0.5.
	CapabilityFrac float64
	// LargestCores is the batch-core count of the federation's largest
	// machine; required (no sane default exists without topology).
	LargestCores int
	// EnsembleMinJobs: minimum burst size for ensemble inference. Default 5.
	EnsembleMinJobs int
	// EnsembleWindow: maximum gap (seconds) between successive submissions
	// inside one burst. Default 3600.
	EnsembleWindow float64
	// ChainMinLinks: minimum dependency-shaped links for workflow
	// inference. Default 3.
	ChainMinLinks int
	// ChainSlack: a successor submitted within this many seconds after a
	// predecessor's end looks dependency-driven. Default 300.
	ChainSlack float64
	// DataBytesThreshold: jobs that moved at least this many bytes through
	// staging are data-centric. Default 5 GB.
	DataBytesThreshold int64
}

func (c Config) withDefaults() Config {
	if c.CapabilityFrac == 0 {
		c.CapabilityFrac = 0.5
	}
	if c.EnsembleMinJobs == 0 {
		c.EnsembleMinJobs = 5
	}
	if c.EnsembleWindow == 0 {
		c.EnsembleWindow = 3600
	}
	if c.ChainMinLinks == 0 {
		c.ChainMinLinks = 3
	}
	if c.ChainSlack == 0 {
		c.ChainSlack = 300
	}
	if c.DataBytesThreshold == 0 {
		c.DataBytesThreshold = 5 << 30
	}
	return c
}

// Classifier assigns usage modalities to accounting records.
type Classifier struct {
	cfg Config
}

// NewClassifier returns a classifier with the given configuration.
func NewClassifier(cfg Config) *Classifier {
	return &Classifier{cfg: cfg.withDefaults()}
}

// Classify processes the central database and returns one result per job
// record, in record order. It never reads the record's ground-truth label —
// the separation between measurement and generator truth is the point of
// the validation experiments (and is enforced by a test).
func (cl *Classifier) Classify(c *accounting.Central) []Result {
	jobs := c.Jobs()
	results := make([]Result, len(jobs))

	// Index: jobs that have gateway end-user attribute records.
	gwAttr := make(map[int64]bool, len(c.GatewayAttrs()))
	for _, a := range c.GatewayAttrs() {
		gwAttr[a.JobID] = true
	}
	// Index: bytes staged per job (transfer records referencing jobs).
	staged := make(map[int64]int64)
	for _, tr := range c.Transfers() {
		if tr.JobID != 0 {
			staged[tr.JobID] += tr.Bytes
		}
	}

	// Pass 1: direct evidence.
	undecided := make([]int, 0, len(jobs))
	for i := range jobs {
		r := &jobs[i]
		res := Result{JobID: r.JobID}
		switch {
		case r.QOS == "urgent":
			res.Modality, res.Source, res.Evidence = job.ModUrgent, SourceAccounting, EvQOSUrgent
		case r.QOS == "interactive":
			res.Modality, res.Source, res.Evidence = job.ModInteractive, SourceAccounting, EvQOSInteractive
		case r.GatewayID != "" || r.SubmitVia == "gateway" || gwAttr[r.JobID]:
			res.Modality, res.Source = job.ModGateway, SourceAttribute
			switch {
			case r.GatewayID != "":
				res.Evidence = EvGatewayID
			case r.SubmitVia == "gateway":
				res.Evidence = EvSubmitVia
			default:
				res.Evidence = EvGatewayUserRec
			}
		case r.CoAllocID != "" || r.BrokerJobID != "" || r.SubmitVia == "metasched":
			res.Modality, res.Source = job.ModMetascheduled, SourceAttribute
			switch {
			case r.CoAllocID != "":
				res.Evidence = EvCoAllocID
			case r.BrokerJobID != "":
				res.Evidence = EvBrokerID
			default:
				res.Evidence = EvSubmitVia
			}
		case r.WorkflowID != "":
			res.Modality, res.Source, res.Evidence = job.ModWorkflow, SourceAttribute, EvWorkflowID
			res.CampaignID = r.WorkflowID
		case r.EnsembleID != "":
			res.Modality, res.Source, res.Evidence = job.ModEnsemble, SourceAttribute, EvEnsembleID
			res.CampaignID = r.EnsembleID
		case staged[r.JobID] >= cl.cfg.DataBytesThreshold:
			res.Modality, res.Source, res.Evidence = job.ModDataCentric, SourceAccounting, EvStagedBytes
		default:
			undecided = append(undecided, i)
		}
		results[i] = res
	}

	// Pass 2: behavioral inference over the undecided remainder.
	cl.inferEnsembles(jobs, results, undecided)
	cl.inferChains(jobs, results, undecided)

	// Pass 3: size-based batch split for everything still undecided.
	for _, i := range undecided {
		if results[i].Modality != "" {
			continue
		}
		r := &jobs[i]
		if cl.cfg.LargestCores > 0 &&
			float64(r.Cores) >= cl.cfg.CapabilityFrac*float64(cl.cfg.LargestCores) {
			results[i] = Result{JobID: r.JobID, Modality: job.ModBatchCapability,
				Source: SourceAccounting, Evidence: EvCapabilitySize}
		} else {
			results[i] = Result{JobID: r.JobID, Modality: job.ModBatchCapacity,
				Source: SourceAccounting, Evidence: EvDefaultCapacity}
		}
	}
	return results
}

// inferEnsembles finds untagged parameter sweeps: bursts of ≥ MinJobs
// submissions by one user with identical job name and core count, each gap
// within the window.
func (cl *Classifier) inferEnsembles(jobs []accounting.JobRecord, results []Result, undecided []int) {
	type key struct {
		user, name string
		cores      int
	}
	groups := make(map[key][]int)
	for _, i := range undecided {
		r := &jobs[i]
		k := key{r.User, r.Name, r.Cores}
		groups[k] = append(groups[k], i)
	}
	// Deterministic group iteration.
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].user != keys[b].user {
			return keys[a].user < keys[b].user
		}
		if keys[a].name != keys[b].name {
			return keys[a].name < keys[b].name
		}
		return keys[a].cores < keys[b].cores
	})
	campaignN := 0
	for _, k := range keys {
		idxs := groups[k]
		if len(idxs) < cl.cfg.EnsembleMinJobs {
			continue
		}
		sort.Slice(idxs, func(a, b int) bool {
			ja, jb := &jobs[idxs[a]], &jobs[idxs[b]]
			if ja.SubmitTime != jb.SubmitTime {
				return ja.SubmitTime < jb.SubmitTime
			}
			return ja.JobID < jb.JobID // ties broken by ID: record order must not matter
		})
		// Split into bursts at gaps larger than the window.
		burst := []int{idxs[0]}
		flush := func() {
			if len(burst) >= cl.cfg.EnsembleMinJobs {
				campaignN++
				id := inferredID("ens", campaignN)
				for _, i := range burst {
					results[i] = Result{
						JobID:      jobs[i].JobID,
						Modality:   job.ModEnsemble,
						Source:     SourceInference,
						Evidence:   EvBurst,
						CampaignID: id,
					}
				}
			}
		}
		for _, i := range idxs[1:] {
			gap := jobs[i].SubmitTime - jobs[burst[len(burst)-1]].SubmitTime
			if gap <= cl.cfg.EnsembleWindow {
				burst = append(burst, i)
			} else {
				flush()
				burst = []int{i}
			}
		}
		flush()
	}
}

// inferChains finds untagged workflows: per-user sequences where each next
// job is submitted within ChainSlack after the previous job's end — the
// signature of an external script driving dependencies. Jobs already
// claimed by ensemble inference are skipped.
func (cl *Classifier) inferChains(jobs []accounting.JobRecord, results []Result, undecided []int) {
	byUser := make(map[string][]int)
	for _, i := range undecided {
		if results[i].Modality != "" {
			continue
		}
		byUser[jobs[i].User] = append(byUser[jobs[i].User], i)
	}
	usersSorted := make([]string, 0, len(byUser))
	for u := range byUser {
		usersSorted = append(usersSorted, u)
	}
	sort.Strings(usersSorted)
	campaignN := 0
	for _, u := range usersSorted {
		idxs := byUser[u]
		sort.Slice(idxs, func(a, b int) bool {
			ja, jb := &jobs[idxs[a]], &jobs[idxs[b]]
			if ja.SubmitTime != jb.SubmitTime {
				return ja.SubmitTime < jb.SubmitTime
			}
			return ja.JobID < jb.JobID // ties broken by ID: record order must not matter
		})
		var chain []int
		flush := func() {
			if len(chain) >= cl.cfg.ChainMinLinks {
				campaignN++
				id := inferredID("wf", campaignN)
				for _, i := range chain {
					results[i] = Result{
						JobID:      jobs[i].JobID,
						Modality:   job.ModWorkflow,
						Source:     SourceInference,
						Evidence:   EvChain,
						CampaignID: id,
					}
				}
			}
		}
		for _, i := range idxs {
			if len(chain) == 0 {
				chain = []int{i}
				continue
			}
			prev := &jobs[chain[len(chain)-1]]
			gap := jobs[i].SubmitTime - prev.EndTime
			if gap >= 0 && gap <= cl.cfg.ChainSlack {
				chain = append(chain, i)
			} else {
				flush()
				chain = []int{i}
			}
		}
		flush()
	}
}

func inferredID(prefix string, n int) string {
	return fmt.Sprintf("inf-%s-%05d", prefix, n)
}
