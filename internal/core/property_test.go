package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/job"
	"github.com/tgsim/tgmod/internal/simrand"
)

// randomRecords builds a random but internally consistent record set with
// a mix of attribute evidence, bursts, and plain batch jobs.
func randomRecords(rng *simrand.Stream, n int) []accounting.JobRecord {
	recs := make([]accounting.JobRecord, 0, n)
	tm := 0.0
	for i := 0; i < n; i++ {
		r := accounting.JobRecord{
			JobID:   int64(i + 1),
			Name:    fmt.Sprintf("app-%d", rng.Intn(5)),
			User:    fmt.Sprintf("u%d", rng.Intn(8)),
			Project: "p", Site: "s", Machine: "m",
			Cores:      1 << uint(rng.Intn(10)),
			SubmitTime: tm,
			QOS:        "normal",
			ExitStatus: "completed",
			NUs:        float64(rng.Intn(100)),
		}
		r.StartTime = r.SubmitTime + float64(rng.Intn(500))
		r.EndTime = r.StartTime + float64(60+rng.Intn(5000))
		r.WallSeconds = r.EndTime - r.StartTime
		switch rng.Intn(8) {
		case 0:
			r.QOS = "urgent"
		case 1:
			r.GatewayID = "gw"
		case 2:
			r.EnsembleID = fmt.Sprintf("ens-%d", rng.Intn(3))
		case 3:
			r.WorkflowID = fmt.Sprintf("wf-%d", rng.Intn(3))
		case 4:
			r.BrokerJobID = "b"
		}
		tm += float64(rng.Intn(600))
		recs = append(recs, r)
	}
	return recs
}

// TestClassifyTotalAndStable: every record receives a non-empty modality,
// and splitting the same records across differently-sized packets (the
// reporting cadence) never changes any per-job decision.
func TestClassifyTotalAndStable(t *testing.T) {
	f := func(seed uint64) bool {
		rng := simrand.New(seed)
		recs := randomRecords(rng, 50+rng.Intn(150))

		ingest := func(chunk int) *accounting.Central {
			c := accounting.NewCentral()
			seq := uint64(0)
			for i := 0; i < len(recs); i += chunk {
				end := i + chunk
				if end > len(recs) {
					end = len(recs)
				}
				seq++
				if err := c.Ingest(&accounting.Packet{Site: "s", Seq: seq,
					Jobs: recs[i:end]}); err != nil {
					t.Fatal(err)
				}
			}
			return c
		}
		cl := NewClassifier(Config{LargestCores: 512})
		oneShot := ingest(len(recs))
		chunked := ingest(1 + rng.Intn(9))

		ra := cl.Classify(oneShot)
		rb := cl.Classify(chunked)
		byID := make(map[int64]job.Modality, len(rb))
		for _, r := range rb {
			byID[r.JobID] = r.Modality
		}
		for _, r := range ra {
			if r.Modality == "" {
				t.Fatalf("seed %d: job %d got empty modality", seed, r.JobID)
			}
			if byID[r.JobID] != r.Modality {
				t.Fatalf("seed %d: job %d classified %q vs %q across packet splits",
					seed, r.JobID, r.Modality, byID[r.JobID])
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestClassifyOrderInvariant: per-job decisions never depend on record
// order — the property the streaming replay path relies on (a replayed
// export may present records in a different order than the live flushes).
func TestClassifyOrderInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		rng := simrand.New(seed)
		recs := randomRecords(rng, 50+rng.Intn(150))
		// Force submit-time ties so the inference sorts' tiebreakers are
		// actually exercised.
		for i := 1; i < len(recs); i += 7 {
			recs[i].SubmitTime = recs[i-1].SubmitTime
		}
		ingest := func(rs []accounting.JobRecord) *accounting.Central {
			c := accounting.NewCentral()
			if err := c.Ingest(&accounting.Packet{Site: "s", Seq: 1, Jobs: rs}); err != nil {
				t.Fatal(err)
			}
			return c
		}
		shuffled := make([]accounting.JobRecord, len(recs))
		for i, j := range rng.Perm(len(recs)) {
			shuffled[i] = recs[j]
		}
		cl := NewClassifier(Config{LargestCores: 512})
		ra := cl.Classify(ingest(recs))
		rb := cl.Classify(ingest(shuffled))
		byID := make(map[int64]job.Modality, len(rb))
		for _, r := range rb {
			byID[r.JobID] = r.Modality
		}
		for _, r := range ra {
			if byID[r.JobID] != r.Modality {
				t.Fatalf("seed %d: job %d classified %q in order, %q shuffled",
					seed, r.JobID, r.Modality, byID[r.JobID])
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestClassifyIdempotent: classifying the same database twice yields
// identical results (no hidden state in the classifier).
func TestClassifyIdempotent(t *testing.T) {
	rng := simrand.New(99)
	recs := randomRecords(rng, 200)
	c := accounting.NewCentral()
	if err := c.Ingest(&accounting.Packet{Site: "s", Seq: 1, Jobs: recs}); err != nil {
		t.Fatal(err)
	}
	cl := NewClassifier(Config{LargestCores: 512})
	a := cl.Classify(c)
	b := cl.Classify(c)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs between runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
