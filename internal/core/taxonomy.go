// Package core implements the paper's contribution: the usage-modality
// measurement framework. It defines the modality taxonomy with each
// modality's measurement source, classifies observed usage (accounting
// records, gateway attribute records, transfer records) into modalities,
// infers the modalities that carry no direct instrumentation, and produces
// the usage-by-modality reports the TeraGrid wanted in order to understand
// "what objectives users are pursuing, how they go about achieving them,
// and why".
package core

import "github.com/tgsim/tgmod/internal/job"

// Source describes how a modality is measured.
type Source int

// Measurement sources, from strongest to weakest evidence.
const (
	// SourceAccounting: derivable from ordinary accounting fields (QOS,
	// queue, core counts) that every site already reports.
	SourceAccounting Source = iota
	// SourceAttribute: requires a deployed instrumentation attribute
	// (gateway end-user records, workflow/ensemble/broker tags).
	SourceAttribute
	// SourceInference: no instrumentation; inferred from behavioral
	// signatures in the record stream (bursts, chains).
	SourceInference
)

// String returns the source name.
func (s Source) String() string {
	switch s {
	case SourceAccounting:
		return "accounting"
	case SourceAttribute:
		return "attribute"
	case SourceInference:
		return "inference"
	default:
		return "unknown"
	}
}

// Info describes one modality in the taxonomy.
type Info struct {
	ID          job.Modality
	Title       string
	Objective   string // what the user is trying to accomplish
	Source      Source // how the measurement framework detects it
	Fallback    Source // detection when the primary attribute is missing
	HasFallback bool
}

// Taxonomy returns the full modality taxonomy in canonical order. This is
// the paper's Table 1 analogue: each usage modality with the objective it
// serves and the measurement approach.
func Taxonomy() []Info {
	return []Info{
		{
			ID:        job.ModBatchCapability,
			Title:     "Batch HPC — capability",
			Objective: "run the largest single simulations possible (hero runs)",
			Source:    SourceAccounting,
		},
		{
			ID:        job.ModBatchCapacity,
			Title:     "Batch HPC — capacity",
			Objective: "steady production simulation at routine scales",
			Source:    SourceAccounting,
		},
		{
			ID:          job.ModEnsemble,
			Title:       "High-throughput / ensemble",
			Objective:   "explore a parameter space with many similar jobs",
			Source:      SourceAttribute,
			Fallback:    SourceInference,
			HasFallback: true,
		},
		{
			ID:          job.ModWorkflow,
			Title:       "Workflow",
			Objective:   "execute multi-step dependent computations automatically",
			Source:      SourceAttribute,
			Fallback:    SourceInference,
			HasFallback: true,
		},
		{
			ID:        job.ModGateway,
			Title:     "Science gateway",
			Objective: "use domain applications through a web portal without accounts",
			Source:    SourceAttribute,
		},
		{
			ID:        job.ModUrgent,
			Title:     "On-demand / urgent",
			Objective: "compute immediately in response to real-world events",
			Source:    SourceAccounting,
		},
		{
			ID:        job.ModInteractive,
			Title:     "Interactive / visualization",
			Objective: "steer, analyze, and visualize interactively",
			Source:    SourceAccounting,
		},
		{
			ID:        job.ModDataCentric,
			Title:     "Data-centric",
			Objective: "move, store, and analyze large datasets across sites",
			Source:    SourceAccounting,
		},
		{
			ID:        job.ModMetascheduled,
			Title:     "Metascheduled / multi-site",
			Objective: "let the grid choose resources; couple multiple machines",
			Source:    SourceAttribute,
		},
	}
}

// InfoFor returns the taxonomy entry for a modality.
func InfoFor(m job.Modality) (Info, bool) {
	for _, i := range Taxonomy() {
		if i.ID == m {
			return i, true
		}
	}
	return Info{}, false
}

// ModalityLabels returns the taxonomy IDs as strings, in canonical order,
// for use as confusion-matrix labels.
func ModalityLabels() []string {
	tax := Taxonomy()
	out := make([]string, len(tax))
	for i, t := range tax {
		out[i] = string(t.ID)
	}
	return out
}
