// Command tgdiff compares two simulation run directories exported with
// tgsim -export and reports regressions: per-series value shifts beyond
// tolerance, plus series added or removed. Because the simulator is
// deterministic, two same-seed runs must diff empty; CI uses that as a
// determinism gate, and developers use seed-to-seed or build-to-build
// diffs to see exactly which metrics a change moved.
//
// Usage:
//
//	tgdiff [-abs N] [-rel N] [-files metrics,obs,acct] BASELINE_DIR CANDIDATE_DIR
//
// -files restricts the comparison to the named run-dir files, so two runs
// exported with different observability (e.g. a live run and its replay,
// which has no metrics.om) can still be diffed over their common files.
//
// Exit status (shared code table with tgsim; see the README): 0 when the
// diff is empty, 1 when it reports regressions, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/tgsim/tgmod/internal/regress"
)

// Exit codes (aligned with tgsim's table in exit.go / the README).
const (
	exitOK   = 0 // diff is empty
	exitDiff = 1 // regressions reported
	exitErr  = 2 // usage or load error
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tgdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	absTol := fs.Float64("abs", 0, "absolute tolerance per series")
	relTol := fs.Float64("rel", 0, "relative tolerance per series (fraction of the larger magnitude)")
	filesFlag := fs.String("files", "", "comma-separated run-dir files to compare: metrics, obs, acct (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: tgdiff [-abs N] [-rel N] [-files metrics,obs,acct] BASELINE_DIR CANDIDATE_DIR")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitErr
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return exitErr
	}
	want := []string{regress.MetricsFile, regress.ObsFile, regress.AcctFile}
	if *filesFlag != "" {
		want = want[:0]
		for _, f := range strings.Split(*filesFlag, ",") {
			switch strings.TrimSpace(f) {
			case "metrics":
				want = append(want, regress.MetricsFile)
			case "obs":
				want = append(want, regress.ObsFile)
			case "acct":
				want = append(want, regress.AcctFile)
			default:
				fmt.Fprintf(stderr, "tgdiff: unknown -files entry %q (want metrics, obs, or acct)\n", f)
				return exitErr
			}
		}
	}

	series := func(dir string) (map[string]float64, error) {
		r, err := regress.LoadRunDirSelect(dir, want...)
		if err != nil {
			return nil, err
		}
		return r.Series()
	}
	a, err := series(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "tgdiff:", err)
		return exitErr
	}
	b, err := series(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "tgdiff:", err)
		return exitErr
	}

	rep := regress.Diff(a, b, regress.Tolerance{Abs: *absTol, Rel: *relTol})
	if err := rep.WriteText(stdout); err != nil {
		fmt.Fprintln(stderr, "tgdiff:", err)
		return exitErr
	}
	if !rep.Empty() {
		return exitDiff
	}
	return exitOK
}
