package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeMetricsDir creates a run directory holding one metrics.om with a
// single series at the given value.
func writeMetricsDir(t *testing.T, value string) string {
	t.Helper()
	dir := t.TempDir()
	om := "# TYPE tg_jobs counter\ntg_jobs_total " + value + "\n# EOF\n"
	if err := os.WriteFile(filepath.Join(dir, "metrics.om"), []byte(om), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestExitCodes pins the documented exit-code contract: 0 empty diff,
// 1 regressions, 2 usage/load errors.
func TestExitCodes(t *testing.T) {
	same := writeMetricsDir(t, "5")
	same2 := writeMetricsDir(t, "5")
	diff := writeMetricsDir(t, "7")

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"identical", []string{same, same2}, exitOK},
		{"regression", []string{same, diff}, exitDiff},
		{"missing dir", []string{same, filepath.Join(same, "nope")}, exitErr},
		{"no args", nil, exitErr},
		{"bad files flag", []string{"-files", "bogus", same, same2}, exitErr},
		{"bad flag", []string{"-definitely-not-a-flag"}, exitErr},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if got := run(tc.args, &out, &errb); got != tc.want {
				t.Fatalf("run(%q) = %d, want %d (stderr: %s)", tc.args, got, tc.want, errb.String())
			}
		})
	}
}

// TestRegressionNamesSeries checks the non-empty diff actually reports
// the moved series on stdout.
func TestRegressionNamesSeries(t *testing.T) {
	a := writeMetricsDir(t, "5")
	b := writeMetricsDir(t, "7")
	var out, errb bytes.Buffer
	if got := run([]string{a, b}, &out, &errb); got != exitDiff {
		t.Fatalf("run = %d, want %d", got, exitDiff)
	}
	if !strings.Contains(out.String(), "tg_jobs_total") {
		t.Fatalf("diff output does not name the moved series:\n%s", out.String())
	}
}
