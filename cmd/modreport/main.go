// Command modreport analyzes a saved accounting trace: it classifies every
// job record into a usage modality, prints the usage-by-modality report,
// and — when the trace carries ground-truth labels — the validation
// confusion summary.
//
// Usage:
//
//	modreport -trace trace.jsonl [-largest-cores N] [-csv] [-explain]
//
// -explain prints classification provenance: one line per job naming the
// evidence rule that fired, followed by per-rule firing counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/tgsim/tgmod/internal/accounting"
	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "modreport:", err)
		os.Exit(1)
	}
}

func run() error {
	tracePath := flag.String("trace", "", "accounting trace (JSON lines) to analyze")
	swfPath := flag.String("swf", "", "Standard Workload Format trace to analyze instead")
	largest := flag.Int("largest-cores", 0, "batch cores of the largest machine (0 = infer from records)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	explain := flag.Bool("explain", false, "print per-job classification provenance and rule firing counts")
	flag.Parse()
	if (*tracePath == "") == (*swfPath == "") {
		return fmt.Errorf("exactly one of -trace or -swf is required")
	}

	central := accounting.NewCentral()
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := central.Import(f); err != nil {
			return err
		}
	} else {
		f, err := os.Open(*swfPath)
		if err != nil {
			return err
		}
		defer f.Close()
		parsed, err := trace.ReadSWF(f)
		if err != nil {
			return err
		}
		err = central.Ingest(&accounting.Packet{
			Site: "swf-import", Seq: 1, Jobs: trace.Records(parsed),
		})
		if err != nil {
			return err
		}
	}
	if len(central.Jobs()) == 0 {
		return fmt.Errorf("trace holds no job records")
	}

	lc := *largest
	if lc == 0 {
		for _, r := range central.Jobs() {
			if r.Cores > lc {
				lc = r.Cores
			}
		}
	}
	cl := core.NewClassifier(core.Config{LargestCores: lc})
	results := cl.Classify(central)
	rep := core.BuildReport(central, results)

	t := report.NewTable("Usage by measured modality",
		"modality", "jobs", "NUs", "NU share", "accounts", "end users")
	for _, row := range rep.Rows {
		share := "-"
		if rep.TotalNUs > 0 {
			share = report.Percent(row.NUs / rep.TotalNUs)
		}
		t.AddRowf(string(row.Modality), row.Jobs, row.NUs, share,
			row.AccountUsers, row.EndUsers)
	}
	write := t.WriteText
	if *csv {
		write = t.WriteCSV
	}
	if err := write(os.Stdout); err != nil {
		return err
	}

	// Validation only when the trace carries truth labels.
	hasTruth := false
	for _, r := range central.Jobs() {
		if r.TruthModality != "" {
			hasTruth = true
			break
		}
	}
	if hasTruth && !*csv {
		conf := core.Validate(central, results)
		fmt.Printf("\nGround truth present: accuracy %.3f over %d jobs\n",
			conf.Accuracy(), conf.Total())
		for _, label := range core.ModalityLabels() {
			fmt.Printf("  %-18s precision %.3f  recall %.3f  F1 %.3f\n",
				label, conf.Precision(label), conf.Recall(label), conf.F1(label))
		}
	}
	v := core.MeasureGatewayVisibility(central)
	if v.GatewayJobs > 0 && !*csv {
		fmt.Printf("\nGateway visibility: %d jobs, %d community accounts, %d recovered end users\n",
			v.GatewayJobs, v.CommunityAccounts, v.RecoveredEndUsers)
	}
	if *explain {
		writeExplain(os.Stdout, results)
	}
	return nil
}

// writeExplain prints per-job provenance (which evidence rule classified
// each record) followed by an aggregate firing-count table sorted by count.
func writeExplain(w *os.File, results []core.Result) {
	fmt.Fprintf(w, "\nClassification provenance (%d jobs)\n", len(results))
	counts := map[string]int{}
	for _, res := range results {
		camp := ""
		if res.CampaignID != "" {
			camp = "  campaign=" + res.CampaignID
		}
		fmt.Fprintf(w, "  job %-8d %-18s source=%-10s evidence=%s%s\n",
			res.JobID, res.Modality, res.Source, res.Evidence, camp)
		counts[res.Evidence]++
	}
	rules := make([]string, 0, len(counts))
	for r := range counts {
		rules = append(rules, r)
	}
	sort.Slice(rules, func(a, b int) bool {
		if counts[rules[a]] != counts[rules[b]] {
			return counts[rules[a]] > counts[rules[b]]
		}
		return rules[a] < rules[b]
	})
	fmt.Fprintf(w, "\nRule firing counts\n")
	for _, r := range rules {
		fmt.Fprintf(w, "  %-26s %d\n", r, counts[r])
	}
}
