// tgobsd is the standalone observatory daemon: it ingests telemetry
// pushed by any number of concurrent runs (tgsim -push, fleet reps,
// replays), maintains one streaming processor and one accounting database
// per run, and serves a federated multi-run console.
//
//	tgobsd -listen 127.0.0.1:9310 -http 127.0.0.1:9311
//	tgsim -scale quick -seed 7 -push 127.0.0.1:9310 -push-id a7
//
// With -merge, tgobsd instead runs as an offline federator: it reads
// exported per-run modalities.json documents and prints the fleet-level
// merge, byte-identical to what a live daemon holding those runs serves
// on /modalities (the CI determinism gate relies on this).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"github.com/tgsim/tgmod/internal/observatory"
	"github.com/tgsim/tgmod/internal/stream"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tgobsd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:9310", "push ingest address (host:port, or unix:PATH)")
	httpAddr := fs.String("http", "127.0.0.1:9311", "console HTTP address")
	streamBuf := fs.Int("stream-buf", 0, "per-run stream inbox capacity (0 = unbounded)")
	finalOut := fs.String("final-out", "", "directory for per-run final artifacts (<id>.modality.txt, <id>.modalities.json)")
	walDir := fs.String("wal", "", "directory for per-run write-ahead journals; on startup, runs found there are recovered")
	grace := fs.Duration("grace", 10*time.Second, "drain window for in-flight connections on SIGINT/SIGTERM")
	pprofFlag := fs.Bool("pprof", false, "mount the net/http/pprof endpoints on the console at /debug/pprof/")
	merge := fs.Bool("merge", false, "offline mode: merge per-run modalities.json files named as args and print the fleet document")
	quiet := fs.Bool("quiet", false, "suppress connection lifecycle logging")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *merge {
		return runMerge(fs.Args())
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "tgobsd: unexpected arguments %q (did you mean -merge?)\n", fs.Args())
		return 2
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	if *quiet {
		logger = nil
	}
	d := observatory.NewDaemon(observatory.Config{
		InboxCap: *streamBuf,
		FinalDir: *finalOut,
		WALDir:   *walDir,
		Pprof:    *pprofFlag,
		Log:      logger,
	})
	if *walDir != "" {
		n, err := d.Recover()
		if err != nil {
			fmt.Fprintf(os.Stderr, "tgobsd: recovery: %v\n", err)
			return 2
		}
		if n > 0 {
			fmt.Fprintf(os.Stderr, "tgobsd: recovered %d run(s) from %s\n", n, *walDir)
		}
	}
	ingest, err := d.ListenIngest(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tgobsd: listen: %v\n", err)
		return 2
	}
	console, err := d.ServeConsole(*httpAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tgobsd: http: %v\n", err)
		d.Close()
		return 2
	}
	// The ready line is a stable contract for scripts (CI greps for it).
	fmt.Fprintf(os.Stderr, "tgobsd: ready ingest=%s http=%s\n", ingest, console)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "tgobsd: %v, draining (up to %s; signal again to force)\n", s, *grace)
	done := make(chan error, 1)
	go func() { done <- d.Shutdown(*grace) }()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "tgobsd: shutdown: %v\n", err)
			return 2
		}
	case s := <-sig:
		// Abandon the drain: process exit severs everything, and the WAL
		// (synced on its batch cadence) covers whatever is cut off.
		fmt.Fprintf(os.Stderr, "tgobsd: %v again, forcing exit\n", s)
		return 2
	}
	return 0
}

// runMerge federates exported per-run modality payloads offline. Run IDs
// are the file base names (with .modalities.json / .json stripped); the
// merge is computed over runs sorted by ID, exactly as the live daemon
// orders its /modalities document.
func runMerge(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "tgobsd: -merge wants one or more modalities.json files")
		return 2
	}
	type runDoc struct {
		id string
		p  *stream.ModalitiesPayload
	}
	docs := make([]runDoc, 0, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tgobsd: %v\n", err)
			return 2
		}
		p, err := observatory.ParseModalities(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tgobsd: %s: %v\n", path, err)
			return 2
		}
		id := filepath.Base(path)
		id = strings.TrimSuffix(id, ".modalities.json")
		id = strings.TrimSuffix(id, ".json")
		docs = append(docs, runDoc{id: id, p: p})
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].id < docs[j].id })
	ids := make([]string, len(docs))
	ps := make([]*stream.ModalitiesPayload, len(docs))
	for i, d := range docs {
		ids[i] = d.id
		ps[i] = d.p
	}
	os.Stdout.Write(stream.MarshalPayload(observatory.MergeModalities(ids, ps)))
	return 0
}
