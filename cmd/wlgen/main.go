// Command wlgen generates a labeled synthetic accounting trace: it runs the
// standard workload mix against the simulated federation and exports the
// central accounting database (job records with ground-truth modality
// labels, transfer records, gateway attribute records) as JSON lines, for
// offline analysis with modreport.
//
// Usage:
//
//	wlgen -out trace.jsonl [-seed N] [-days D] [-gateway-coverage F] [-ensemble-coverage F] [-workflow-tagged F]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/scenario"
	"github.com/tgsim/tgmod/internal/trace"
	"github.com/tgsim/tgmod/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "", "output trace path (required)")
	swfPath := flag.String("swf", "", "also export the job stream in Standard Workload Format")
	seed := flag.Uint64("seed", 1, "scenario seed")
	days := flag.Float64("days", 30, "simulated horizon in days")
	gwCov := flag.Float64("gateway-coverage", 0.9, "gateway attribute coverage [0,1]")
	ensCov := flag.Float64("ensemble-coverage", 0.5, "ensemble tag coverage [0,1]")
	wfTag := flag.Float64("workflow-tagged", 0.6, "fraction of workflows run by tagging engines [0,1]")
	brokerCov := flag.Float64("broker-coverage", 1.0, "broker tag coverage [0,1]")
	flag.Parse()
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	cfg := scenario.DefaultConfig(*seed)
	cfg.Horizon = des.Time(*days) * des.Day
	cfg.DrainTime = cfg.Horizon / 8
	cfg.BrokerTagCoverage = *brokerCov
	for i := range cfg.Gateways {
		cfg.Gateways[i].AttrCoverage = *gwCov
	}
	for _, g := range cfg.Generators {
		switch gg := g.(type) {
		case *workload.EnsembleGen:
			gg.TagCoverage = *ensCov
		case *workload.WorkflowGen:
			gg.TaggedFrac = *wfTag
		}
	}

	res, err := scenario.Run(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := res.Central.Export(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if *swfPath != "" {
		sf, err := os.Create(*swfPath)
		if err != nil {
			return err
		}
		if err := trace.WriteSWF(sf, res.Central.Jobs()); err != nil {
			sf.Close()
			return err
		}
		if err := sf.Close(); err != nil {
			return err
		}
		fmt.Printf("wlgen: wrote SWF trace to %s\n", *swfPath)
	}
	fmt.Printf("wlgen: wrote %d job records, %d transfers, %d gateway attributes to %s\n",
		len(res.Central.Jobs()), len(res.Central.Transfers()),
		len(res.Central.GatewayAttrs()), *out)
	return nil
}
