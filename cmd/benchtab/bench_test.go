package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/tgsim/tgmod/internal/experiments"
)

func TestWriteBenchRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	wall := map[string]float64{"T1": 0.001, "F7": 2.5}
	if err := writeBenchRecord(path, 7, "quick", experiments.Quick, wall); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec BenchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if rec.Schema != benchSchemaVersion {
		t.Errorf("schema = %d, want %d", rec.Schema, benchSchemaVersion)
	}
	if rec.Seed != 7 || rec.Scale != "quick" {
		t.Errorf("seed/scale = %d/%s", rec.Seed, rec.Scale)
	}
	if rec.Kernel.Events == 0 || rec.Kernel.EventsPerSec <= 0 {
		t.Errorf("kernel stats empty: %+v", rec.Kernel)
	}
	if rec.Kernel.PeakFEL <= 0 || rec.Kernel.JobsFinished <= 0 {
		t.Errorf("kernel stats missing FEL/finished: %+v", rec.Kernel)
	}
	if rec.Experiments["F7"] != 2.5 {
		t.Errorf("experiment wall times not preserved: %v", rec.Experiments)
	}
	if rec.GitDescribe == "" || rec.GoVersion == "" || rec.GeneratedAt == "" {
		t.Errorf("provenance fields empty: %+v", rec)
	}
	// The fleet section records two real runs: both walls measured, the
	// parallel one at the host's width, never a copied sequential wall.
	if rec.Fleet == nil {
		t.Fatal("fleet section missing")
	}
	if rec.Fleet.WallSeqSeconds <= 0 || rec.Fleet.WallParSeconds <= 0 {
		t.Errorf("fleet walls not measured: %+v", rec.Fleet)
	}
	if rec.Fleet.WallSeqSeconds == rec.Fleet.WallParSeconds {
		t.Errorf("seq and par walls identical (%.9fs): one run recorded twice", rec.Fleet.WallSeqSeconds)
	}
	if rec.Fleet.Speedup <= 0 {
		t.Errorf("fleet speedup not computed: %+v", rec.Fleet)
	}
	if rec.Fleet.Workers < 1 || rec.Fleet.Reps < 8 {
		t.Errorf("fleet shape: %+v", rec.Fleet)
	}
}
