package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"github.com/tgsim/tgmod/internal/experiments"
	"github.com/tgsim/tgmod/internal/fleet"
	"github.com/tgsim/tgmod/internal/observatory"
	"github.com/tgsim/tgmod/internal/scenario"
)

// benchSchemaVersion identifies the BENCH_*.json layout; bump it on any
// field change so history tooling can tell records apart.
// v2 added the fleet section (replication-fleet scaling figures).
// v3 measures the fleet section directly: a dedicated sequential run and
// a dedicated workers=GOMAXPROCS run, each with its real wall, instead of
// reusing the FL sweep's endpoints (which collapse to one workers=1 row
// on a single-core host and recorded speedup 1.0 by construction).
// v4 added the push section (observatory push overhead: events/s with the
// run streaming to a local tgobsd vs. off).
// v5 records both fleet worker counts (workers_seq alongside workers),
// measures the fleet and push legs with a warm-up run plus best-of-3
// alternating legs (single-shot walls on a single-core host jitter ±20%
// and once recorded a nonsense 0.81 "speedup" at width 1 — see
// EXPERIMENTS.md), and adds kernel allocation/GC deltas (alloc_bytes,
// gc_cycles).
const benchSchemaVersion = 5

// BenchRecord is one point on the performance trajectory: what was built
// (git describe), how it was run (seed, scale, host), how fast the kernel
// went on the standard scenario, and how long each experiment took. The
// schema is documented in DESIGN.md.
type BenchRecord struct {
	Schema      int                `json:"schema"`
	GeneratedAt string             `json:"generated_at"` // RFC 3339, wall clock
	GitDescribe string             `json:"git_describe"`
	GoVersion   string             `json:"go_version"`
	Seed        uint64             `json:"seed"`
	Scale       string             `json:"scale"`
	Kernel      BenchKernel        `json:"kernel"`
	Fleet       *BenchFleet        `json:"fleet,omitempty"`
	Push        *BenchPush         `json:"push,omitempty"`
	Experiments map[string]float64 `json:"experiments_wall_s"`
}

// BenchKernel holds throughput figures from a timed scenario.Run over
// experiments.StandardConfig: total kernel events executed, achieved
// events per wall-clock second, the future-event-list high-water mark,
// and how many jobs finished (a sanity anchor: if it shifts between
// same-seed records, the comparison is not like-for-like).
type BenchKernel struct {
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_s"`
	EventsPerSec float64 `json:"events_per_sec"`
	PeakFEL      int     `json:"peak_fel"`
	JobsFinished int     `json:"jobs_finished"`
	// AllocBytes and GCCycles are runtime.MemStats deltas across the timed
	// run (v5+): allocation pressure is the usual cause of a throughput
	// regression, so the trajectory records it next to events/s.
	AllocBytes uint64 `json:"alloc_bytes"`
	GCCycles   uint32 `json:"gc_cycles"`
}

// BenchFleet holds replication-fleet scaling figures: the same
// Reps-replication fleet timed twice — once sequentially (workers=1) and
// once at the host's full width (workers=GOMAXPROCS) — with the
// wall-clock speedup between the two real runs and the parallel fleet's
// aggregate event throughput. Speedup near the worker count means
// replications scale linearly (no shared state, no contention); on a
// single-core host both runs are width 1 and the speedup honestly
// measures ~1.
type BenchFleet struct {
	Reps int `json:"reps"`
	// Workers is the parallel leg's actual worker count; WorkersSeq (v5+)
	// the sequential leg's (always 1). Recording both makes the speedup
	// figure self-describing: on a single-core host 1→1 says up front that
	// the "speedup" is a same-width control, not a scaling measurement.
	Workers        int     `json:"workers"`
	WorkersSeq     int     `json:"workers_seq"`
	WallSeqSeconds float64 `json:"wall_seq_s"`
	WallParSeconds float64 `json:"wall_par_s"`
	Speedup        float64 `json:"speedup"`
	EventsPerSec   float64 `json:"events_per_sec_aggregate"`
}

// measureFleet times the bench fleet sequentially (workers=1) and at the
// host's full width (workers=GOMAXPROCS). Both walls come from dedicated
// runs (the FL experiment's sweep table is rendered separately and shares
// no measurements).
//
// v5 measurement protocol: one untimed warm-up fleet first (pages the
// working set in and settles the allocator), then three alternating
// seq/par leg pairs keeping each side's best wall. Single-shot cold walls
// jitter ±20% on a loaded single-core host — schema v3/v4 records carry
// width-1 "speedups" of 0.78–0.81 from exactly that, measured and
// documented in EXPERIMENTS.md. Best-of-3 on both sides bounds the noise
// symmetrically without hiding a real regression.
func measureFleet(seed uint64, sc experiments.Scale) (*BenchFleet, error) {
	reps := 8
	if sc == experiments.Full {
		reps = 16
	}
	runAt := func(workers int) (*fleet.Result, error) {
		res, err := fleet.Run(fleet.Spec{
			Reps:     reps,
			Parallel: workers,
			BaseSeed: seed,
			Build: func(s uint64) scenario.Config {
				return scenario.New(s, experiments.StandardOptions(sc)...)
			},
		})
		if err != nil {
			return nil, fmt.Errorf("fleet (workers=%d): %w", workers, err)
		}
		return res, nil
	}
	parWidth := runtime.GOMAXPROCS(0)
	if _, err := runAt(parWidth); err != nil { // warm-up, never timed
		return nil, err
	}
	var seqBest, parBest *fleet.Result
	for leg := 0; leg < 3; leg++ {
		seq, err := runAt(1)
		if err != nil {
			return nil, err
		}
		if seqBest == nil || seq.Wall < seqBest.Wall {
			seqBest = seq
		}
		par, err := runAt(parWidth)
		if err != nil {
			return nil, err
		}
		if parBest == nil || par.Wall < parBest.Wall {
			parBest = par
		}
	}
	bf := &BenchFleet{
		Reps:           reps,
		Workers:        parBest.Workers,
		WorkersSeq:     seqBest.Workers,
		WallSeqSeconds: seqBest.Wall,
		WallParSeconds: parBest.Wall,
		EventsPerSec:   parBest.EventsPerSec(),
	}
	if parBest.Wall > 0 {
		bf.Speedup = seqBest.Wall / parBest.Wall
	}
	return bf, nil
}

// BenchPush holds observatory push-overhead figures: the standard
// scenario timed twice from the same baseline — once plain, once with a
// pusher streaming every accounting flush to an in-process tgobsd daemon
// on loopback — and the throughput cost of the push path. PacketFrames
// anchors the comparison (it must match the run's flush count; a lossy
// push would make the overhead figure meaningless and fails the
// measurement instead).
type BenchPush struct {
	EventsPerSecPlain float64 `json:"events_per_sec_plain"`
	EventsPerSecPush  float64 `json:"events_per_sec_push"`
	OverheadPct       float64 `json:"overhead_pct"`
	PacketFrames      uint64  `json:"packet_frames"`
	PushedBytes       uint64  `json:"pushed_bytes"`
}

// measurePush times the standard scenario with and without a push to a
// local in-process observatory daemon, under the same v5 protocol as the
// fleet: one untimed warm-up, then three alternating plain/push leg pairs
// keeping each side's best throughput. (The v4 single-shot protocol
// recorded a 28.7% "overhead" that was mostly the plain leg running cold;
// see EXPERIMENTS.md.)
func measurePush(seed uint64, sc experiments.Scale) (*BenchPush, error) {
	timed := func(push, runID string) (float64, uint64, uint64, error) {
		cfg := experiments.StandardConfig(seed, sc)
		var p *observatory.Pusher
		if push != "" {
			fed := cfg.Federation
			if fed == nil {
				var err error
				if fed, err = scenario.TG9(); err != nil {
					return 0, 0, 0, err
				}
			}
			largest := 0
			for _, m := range fed.Machines() {
				if m.BatchCores() > largest {
					largest = m.BatchCores()
				}
			}
			var err error
			p, err = observatory.Dial(push, observatory.Hello{
				Run: runID, Seed: seed, LargestCores: largest,
				EndTimeS: float64(cfg.Horizon + cfg.DrainTime), Source: "benchtab",
			})
			if err != nil {
				return 0, 0, 0, err
			}
			cfg.Observers = append(cfg.Observers, p.Observer(nil))
		}
		start := time.Now()
		res, err := scenario.Run(cfg)
		if err != nil {
			if p != nil {
				p.Abort()
			}
			return 0, 0, 0, err
		}
		wall := time.Since(start).Seconds()
		var frames, bytes uint64
		if p != nil {
			if err := p.Finish(float64(cfg.Horizon + cfg.DrainTime)); err != nil {
				return 0, 0, 0, fmt.Errorf("push finish: %w", err)
			}
			if p.Lossy() {
				return 0, 0, 0, fmt.Errorf("push lost frames; overhead figure would be meaningless")
			}
			st := p.Stats()
			frames, bytes = st.Packets, st.Bytes
		}
		eps := 0.0
		if wall > 0 {
			eps = float64(res.Kernel.Executed()) / wall
		}
		return eps, frames, bytes, nil
	}

	if _, _, _, err := timed("", ""); err != nil { // warm-up, never timed
		return nil, err
	}
	d := observatory.NewDaemon(observatory.Config{})
	addr, err := d.ListenIngest("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer d.Close()
	bp := &BenchPush{}
	for leg := 0; leg < 3; leg++ {
		plainEPS, _, _, err := timed("", "")
		if err != nil {
			return nil, err
		}
		if plainEPS > bp.EventsPerSecPlain {
			bp.EventsPerSecPlain = plainEPS
		}
		pushEPS, frames, bytes, err := timed(addr, fmt.Sprintf("bench-%d", leg))
		if err != nil {
			return nil, err
		}
		if pushEPS > bp.EventsPerSecPush {
			bp.EventsPerSecPush = pushEPS
			bp.PacketFrames, bp.PushedBytes = frames, bytes
		}
	}
	if bp.EventsPerSecPlain > 0 {
		bp.OverheadPct = 100 * (1 - bp.EventsPerSecPush/bp.EventsPerSecPlain)
	}
	return bp, nil
}

// measureKernel times the standard scenario and extracts kernel stats,
// including the run's allocation and GC-cycle deltas (v5).
func measureKernel(seed uint64, sc experiments.Scale) (BenchKernel, error) {
	cfg := experiments.StandardConfig(seed, sc)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := scenario.Run(cfg)
	if err != nil {
		return BenchKernel{}, err
	}
	wall := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	k := BenchKernel{
		Events:       res.Kernel.Executed(),
		WallSeconds:  wall,
		PeakFEL:      res.Kernel.MaxPending(),
		JobsFinished: res.Finished,
		AllocBytes:   after.TotalAlloc - before.TotalAlloc,
		GCCycles:     after.NumGC - before.NumGC,
	}
	if wall > 0 {
		k.EventsPerSec = float64(k.Events) / wall
	}
	return k, nil
}

// gitDescribe returns `git describe --always --dirty`, or "unknown" when
// git or the repository is unavailable (records must still be writable
// from an exported tarball).
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// writeBenchRecord assembles the record and writes it to path as indented
// JSON with a trailing newline.
func writeBenchRecord(path string, seed uint64, scaleName string, sc experiments.Scale, wall map[string]float64) error {
	kern, err := measureKernel(seed, sc)
	if err != nil {
		return fmt.Errorf("kernel measurement: %w", err)
	}
	flt, err := measureFleet(seed, sc)
	if err != nil {
		return fmt.Errorf("fleet measurement: %w", err)
	}
	psh, err := measurePush(seed, sc)
	if err != nil {
		return fmt.Errorf("push measurement: %w", err)
	}
	rec := BenchRecord{
		Schema:      benchSchemaVersion,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GitDescribe: gitDescribe(),
		GoVersion:   runtime.Version(),
		Seed:        seed,
		Scale:       scaleName,
		Kernel:      kern,
		Fleet:       flt,
		Push:        psh,
		Experiments: wall,
	}
	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
