package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"github.com/tgsim/tgmod/internal/experiments"
	"github.com/tgsim/tgmod/internal/scenario"
)

// benchSchemaVersion identifies the BENCH_*.json layout; bump it on any
// field change so history tooling can tell records apart.
// v2 added the fleet section (replication-fleet scaling figures).
const benchSchemaVersion = 2

// BenchRecord is one point on the performance trajectory: what was built
// (git describe), how it was run (seed, scale, host), how fast the kernel
// went on the standard scenario, and how long each experiment took. The
// schema is documented in DESIGN.md.
type BenchRecord struct {
	Schema      int                `json:"schema"`
	GeneratedAt string             `json:"generated_at"` // RFC 3339, wall clock
	GitDescribe string             `json:"git_describe"`
	GoVersion   string             `json:"go_version"`
	Seed        uint64             `json:"seed"`
	Scale       string             `json:"scale"`
	Kernel      BenchKernel        `json:"kernel"`
	Fleet       *BenchFleet        `json:"fleet,omitempty"`
	Experiments map[string]float64 `json:"experiments_wall_s"`
}

// BenchKernel holds throughput figures from a timed scenario.Run over
// experiments.StandardConfig: total kernel events executed, achieved
// events per wall-clock second, the future-event-list high-water mark,
// and how many jobs finished (a sanity anchor: if it shifts between
// same-seed records, the comparison is not like-for-like).
type BenchKernel struct {
	Events       uint64  `json:"events"`
	WallSeconds  float64 `json:"wall_s"`
	EventsPerSec float64 `json:"events_per_sec"`
	PeakFEL      int     `json:"peak_fel"`
	JobsFinished int     `json:"jobs_finished"`
}

// BenchFleet holds replication-fleet scaling figures from the FL
// experiment: the same Reps-replication fleet timed sequentially and at
// the widest worker count, with the wall-clock speedup between them and
// the parallel fleet's aggregate event throughput. Speedup near the
// worker count means replications scale linearly (no shared state, no
// contention); on a single-core host the two walls coincide and the
// speedup is ~1 by construction.
type BenchFleet struct {
	Reps           int     `json:"reps"`
	Workers        int     `json:"workers"`
	WallSeqSeconds float64 `json:"wall_seq_s"`
	WallParSeconds float64 `json:"wall_par_s"`
	Speedup        float64 `json:"speedup"`
	EventsPerSec   float64 `json:"events_per_sec_aggregate"`
}

// measureFleet runs the FL scaling experiment and condenses it to the
// sequential-vs-widest comparison the record tracks.
func measureFleet(seed uint64, sc experiments.Scale) (*BenchFleet, error) {
	_, rows, err := experiments.FLFleetScaling(seed, sc)
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, nil
	}
	first, last := rows[0], rows[len(rows)-1]
	return &BenchFleet{
		Reps:           last.Reps,
		Workers:        last.Workers,
		WallSeqSeconds: first.Wall,
		WallParSeconds: last.Wall,
		Speedup:        last.Speedup,
		EventsPerSec:   last.EventsSec,
	}, nil
}

// measureKernel times the standard scenario and extracts kernel stats.
func measureKernel(seed uint64, sc experiments.Scale) (BenchKernel, error) {
	cfg := experiments.StandardConfig(seed, sc)
	start := time.Now()
	res, err := scenario.Run(cfg)
	if err != nil {
		return BenchKernel{}, err
	}
	wall := time.Since(start).Seconds()
	k := BenchKernel{
		Events:       res.Kernel.Executed(),
		WallSeconds:  wall,
		PeakFEL:      res.Kernel.MaxPending(),
		JobsFinished: res.Finished,
	}
	if wall > 0 {
		k.EventsPerSec = float64(k.Events) / wall
	}
	return k, nil
}

// gitDescribe returns `git describe --always --dirty`, or "unknown" when
// git or the repository is unavailable (records must still be writable
// from an exported tarball).
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// writeBenchRecord assembles the record and writes it to path as indented
// JSON with a trailing newline.
func writeBenchRecord(path string, seed uint64, scaleName string, sc experiments.Scale, wall map[string]float64) error {
	kern, err := measureKernel(seed, sc)
	if err != nil {
		return fmt.Errorf("kernel measurement: %w", err)
	}
	flt, err := measureFleet(seed, sc)
	if err != nil {
		return fmt.Errorf("fleet measurement: %w", err)
	}
	rec := BenchRecord{
		Schema:      benchSchemaVersion,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GitDescribe: gitDescribe(),
		GoVersion:   runtime.Version(),
		Seed:        seed,
		Scale:       scaleName,
		Kernel:      kern,
		Fleet:       flt,
		Experiments: wall,
	}
	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
