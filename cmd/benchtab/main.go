// Command benchtab regenerates every table and figure in the evaluation
// (see EXPERIMENTS.md): the modality taxonomy, usage breakdowns, classifier
// validation sweeps, job-size and gateway-growth distributions, scheduler
// comparisons, urgent-computing costs, WAN usage, kernel throughput, and
// inference ablations.
//
// Usage:
//
//	benchtab [-seed N] [-scale quick|full] [-only T3] [-progress] [-json PATH]
//	benchtab -history [-bench-dir DIR]
//	benchtab -gate CANDIDATE.json -baseline BASELINE.json [-tol-eps F] [-tol-speedup F]
//
// -progress prints one line per experiment to stderr (id and wall time)
// without touching stdout, so piped table output stays clean. -json writes
// a BENCH_*.json performance-trajectory record (see DESIGN.md for the
// schema): per-experiment wall time plus kernel throughput on the standard
// scenario, stamped with git describe, seed, and scale.
//
// -history parses every committed BENCH_*.json — all schema versions since
// v2 — into one normalized trajectory table and lists noise-aware
// regressions along it. -gate compares a freshly measured candidate record
// against a committed baseline with explicit tolerances and exits 2 on a
// regression (the CI perf gate). Both analysis modes run no experiments.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/tgsim/tgmod/internal/experiments"
	"github.com/tgsim/tgmod/internal/perf"
)

// errGate marks a perf-gate failure; main maps it to exit code 2 so CI can
// tell "performance regressed" from "benchtab broke".
var errGate = errors.New("perf gate failed")

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		if errors.Is(err, errGate) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Uint64("seed", 7, "experiment seed")
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. T3,F4); empty = all")
	progress := flag.Bool("progress", false, "print per-experiment progress to stderr")
	jsonPath := flag.String("json", "", "write a BENCH_*.json perf record to this path")
	history := flag.Bool("history", false, "parse committed BENCH_*.json records into the trajectory table and exit")
	benchDir := flag.String("bench-dir", ".", "directory holding BENCH_*.json records (with -history)")
	gatePath := flag.String("gate", "", "candidate BENCH record to gate against -baseline; exits 2 on regression")
	basePath := flag.String("baseline", "", "committed baseline BENCH record (with -gate)")
	tolEPS := flag.Float64("tol-eps", 0.30, "allowed fractional drop in kernel events/s before the gate fails")
	tolSpeedup := flag.Float64("tol-speedup", 0.30, "allowed fractional drop in fleet speedup before the gate fails")
	flag.Parse()

	if *history {
		return runHistory(*benchDir, *tolEPS)
	}
	if *gatePath != "" || *basePath != "" {
		if *gatePath == "" || *basePath == "" {
			return fmt.Errorf("-gate and -baseline go together")
		}
		return runGate(*gatePath, *basePath, perf.Tolerance{
			EventsPSFrac: *tolEPS, SpeedupFrac: *tolSpeedup,
		})
	}

	var sc experiments.Scale
	switch *scaleFlag {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q", *scaleFlag)
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	type gen struct {
		id  string
		run func() (fmt.Stringer, error)
	}
	gens := []gen{
		{"T1", func() (fmt.Stringer, error) { return experiments.T1Taxonomy(), nil }},
		{"T2", func() (fmt.Stringer, error) { return experiments.T2Mechanism(*seed, sc) }},
		{"T3", func() (fmt.Stringer, error) { return experiments.T3ModalityUsage(*seed, sc) }},
		{"T4", func() (fmt.Stringer, error) { return experiments.T4Coverage(*seed, sc) }},
		{"F1", func() (fmt.Stringer, error) { return experiments.F1JobSize(*seed, sc) }},
		{"F2", func() (fmt.Stringer, error) { return experiments.F2GatewayGrowth(*seed, sc) }},
		{"F3", func() (fmt.Stringer, error) { return experiments.F3WaitBySize(*seed, sc) }},
		{"F4", func() (fmt.Stringer, error) { return experiments.F4Utilization(*seed, sc) }},
		{"F5", func() (fmt.Stringer, error) { return experiments.F5Urgent(*seed, sc) }},
		{"F6", func() (fmt.Stringer, error) { return experiments.F6Transfers(*seed, sc) }},
		{"F7", func() (fmt.Stringer, error) { return experiments.F7Kernel(sc), nil }},
		{"F8", func() (fmt.Stringer, error) { return experiments.F8Inference(*seed, sc) }},
		{"F9", func() (fmt.Stringer, error) { return experiments.F9Prediction(*seed, sc) }},
		{"GV", func() (fmt.Stringer, error) { return experiments.GatewayVisibilityTable(*seed, sc) }},
		{"CC", func() (fmt.Stringer, error) { return experiments.ConcentrationTable(*seed, sc) }},
		{"SQ", func() (fmt.Stringer, error) { return experiments.ServiceTable(*seed, sc) }},
		{"FS", func() (fmt.Stringer, error) { return experiments.FieldTable(*seed, sc) }},
		{"CR", func() (fmt.Stringer, error) { return experiments.CampaignTable(*seed, sc) }},
		{"OV", func() (fmt.Stringer, error) { return experiments.OverlapTable(*seed, sc) }},
		{"MA", func() (fmt.Stringer, error) { return experiments.MaintenanceTable(*seed, sc) }},
		{"SL", func() (fmt.Stringer, error) { return experiments.SLOTable(*seed, sc) }},
		{"PX", func() (fmt.Stringer, error) { return experiments.PXPolicyEngines(*seed, sc) }},
		{"FL", func() (fmt.Stringer, error) {
			t, _, err := experiments.FLFleetScaling(*seed, sc)
			return t, err
		}},
		{"FT", func() (fmt.Stringer, error) { return experiments.FTChaos(*seed, sc) }},
		{"DR", func() (fmt.Stringer, error) {
			t, _, err := experiments.DRDrift(*seed, sc)
			return t, err
		}},
	}
	wall := map[string]float64{}
	for _, g := range gens {
		if !selected(g.id) {
			continue
		}
		if *progress {
			fmt.Fprintf(os.Stderr, "benchtab: %s...", g.id)
		}
		start := time.Now()
		out, err := g.run()
		wall[g.id] = time.Since(start).Seconds()
		if *progress {
			fmt.Fprintf(os.Stderr, " %.2fs\n", wall[g.id])
		}
		if err != nil {
			return fmt.Errorf("%s: %w", g.id, err)
		}
		fmt.Printf("[%s]\n%s\n", g.id, out)
	}
	if *jsonPath != "" {
		if *progress {
			fmt.Fprintf(os.Stderr, "benchtab: timing kernel for %s...\n", *jsonPath)
		}
		if err := writeBenchRecord(*jsonPath, *seed, *scaleFlag, sc, wall); err != nil {
			return fmt.Errorf("bench record: %w", err)
		}
		fmt.Fprintf(os.Stderr, "benchtab: wrote perf record to %s\n", *jsonPath)
	}
	return nil
}

// runHistory renders the normalized bench trajectory across every schema
// version and lists points that dipped below their noise-aware trailing
// baseline. Detection is informational here — the record is already
// committed; the hard stop is the -gate path, which fires before a commit.
func runHistory(dir string, tolEPS float64) error {
	points, err := perf.LoadBenchDir(dir)
	if err != nil {
		return err
	}
	if err := perf.TrajectoryTable(points).WriteText(os.Stdout); err != nil {
		return err
	}
	if regs := perf.DetectRegressions(points, tolEPS); len(regs) > 0 {
		fmt.Println()
		for _, r := range regs {
			fmt.Printf("regression: %s\n", r)
		}
	}
	return nil
}

// runGate compares a candidate record against the committed baseline and
// fails (exit 2 via errGate) when any gated figure drops past tolerance.
func runGate(candPath, basePath string, tol perf.Tolerance) error {
	base, err := perf.LoadBenchFile(basePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cand, err := perf.LoadBenchFile(candPath)
	if err != nil {
		return fmt.Errorf("candidate: %w", err)
	}
	viols := perf.Compare(base, cand, tol)
	fmt.Printf("perf gate: %s (%.0f events/s) vs baseline %s (%.0f events/s), tolerance eps %.0f%% speedup %.0f%%\n",
		cand.File, cand.EventsPS, base.File, base.EventsPS,
		100*tol.EventsPSFrac, 100*tol.SpeedupFrac)
	if len(viols) == 0 {
		fmt.Println("perf gate: PASS")
		return nil
	}
	for _, v := range viols {
		fmt.Printf("perf gate: FAIL: %s\n", v)
	}
	return errGate
}
