package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/regress"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/stream"
	"github.com/tgsim/tgmod/internal/telemetry"
)

// runReplayMode implements tgsim -replay DIR: the exported run directory
// is streamed through the modality observatory in virtual-time order
// (optionally paced by -replay-speed) and the post-run modality report is
// rebuilt from the imported accounting trace.
//
// Replay equivalence: acct.jsonl preserves the live run's central
// ingestion order exactly (Export/Import round-trip), and the batch
// classifier plus report builder are the same code the live run used, so
// the replayed modality table is byte-identical to the live one. Compare
// the two -modality-out files, or tgdiff the two -export directories.
func runReplayMode(dir string, speed float64, streamBuf int,
	exportDir, modalityOut, csvDir string, quiet bool) error {
	run, err := regress.LoadRunDir(dir)
	if err != nil {
		return err
	}
	if run.Central == nil {
		return fmt.Errorf("-replay: %s has no %s (export the run with -export)", dir, regress.AcctFile)
	}

	largest := 0
	var endTime des.Time
	if run.Manifest != nil {
		largest = run.Manifest.LargestCores
		endTime = des.Time(run.Manifest.EndTimeS)
	}
	if largest == 0 {
		// Pre-manifest export: fall back to the biggest job seen, the same
		// inference a post-hoc analysis of a real accounting dump would use.
		for _, j := range run.Central.Jobs() {
			if j.Cores > largest {
				largest = j.Cores
			}
		}
	}

	reg := telemetry.New()
	proc := stream.New(stream.Config{
		LargestCores: largest, InboxCap: streamBuf, Registry: reg,
	})
	rp := &stream.Replay{Run: run, Speed: speed, EndTime: endTime}
	records, spans, err := rp.Feed(proc)
	if err != nil {
		return err
	}

	// The byte-identical report path: classify the imported central
	// directly, exactly as the live run classified its own.
	cl := core.NewClassifier(core.Config{LargestCores: largest})
	results := cl.Classify(run.Central)
	rep := core.BuildReport(run.Central, results)
	mod := modalityTable(rep)
	if modalityOut != "" {
		if err := writeTo(modalityOut, mod.WriteText); err != nil {
			return err
		}
	}

	if exportDir != "" {
		// Re-export what replay can reproduce exactly: the accounting trace
		// and obs events round-trip byte-identically; metrics.om does not
		// (a replay has no kernel), so it is deliberately absent.
		var man *regress.Manifest
		if run.Manifest != nil {
			m := *run.Manifest
			man = &m
		}
		if err := regress.WriteRunDir(exportDir, nil,
			stream.RebuildObsBuffer(run.Events), run.Central, man); err != nil {
			return err
		}
		if err := writeTo(filepath.Join(exportDir, "modalities.json"), func(w io.Writer) error {
			_, err := w.Write(proc.ModalitiesJSON())
			return err
		}); err != nil {
			return err
		}
		if err := writeTo(filepath.Join(exportDir, "drift.json"), func(w io.Writer) error {
			_, err := w.Write(proc.DriftJSON())
			return err
		}); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tgsim: replay exported to %s\n", exportDir)
	}

	snap := proc.Snap()
	if quiet {
		fmt.Printf("replayed records=%d obs=%d ingested=%d dropped=%d jobs=%d NUs=%.0f\n",
			records, spans, snap.Ingested, snap.Dropped,
			len(run.Central.Jobs()), run.Central.TotalNUs())
		return nil
	}

	fmt.Printf("tgsim: replay of %s: %d records + %d obs events through the stream "+
		"(%d ingested, %d dropped)\n\n", dir, records, spans, snap.Ingested, snap.Dropped)

	if err := mod.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	dr := proc.Drift()
	drt := report.NewTable("Classifier drift vs trailing ground truth",
		"window", "scored", "disagree", "drift", "peak")
	for _, w := range dr.Windows {
		drt.AddRowf(w.Window, w.Events, w.Disagree,
			fmt.Sprintf("%.3f", w.Rate), fmt.Sprintf("%.3f", w.Peak))
	}
	drt.AddRowf("lifetime", dr.Events, dr.Disagree, fmt.Sprintf("%.3f", dr.Rate), "")
	if err := drt.WriteText(os.Stdout); err != nil {
		return err
	}

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		if err := writeTo(filepath.Join(csvDir, "modality.csv"), mod.WriteCSV); err != nil {
			return err
		}
		if err := writeTo(filepath.Join(csvDir, "drift.csv"), drt.WriteCSV); err != nil {
			return err
		}
	}
	return nil
}
