package main

import "errors"

// Exit codes, unified across tgsim and tgdiff (documented in README):
//
//	0  success (tgdiff: no differences)
//	1  difference found (tgdiff regressions; replay-equivalence mismatch)
//	2  usage, load, or runtime error
//	3  observability loss under -strict-obs (span-buffer drop, stream-inbox
//	   drop, or a lossy/broken -push)
//	4  fleet partial failure (one or more replications errored)
//
// tgsim itself never exits 1: byte-equivalence is always checked by an
// external comparator (tgdiff or cmp), which owns that code.
const (
	exitOK           = 0
	exitDiff         = 1
	exitErr          = 2
	exitObsLoss      = 3
	exitFleetPartial = 4
)

// codedError tags an error with its process exit code while leaving the
// underlying error chain intact for errors.Is matching.
type codedError struct {
	code int
	err  error
}

func (e *codedError) Error() string { return e.err.Error() }
func (e *codedError) Unwrap() error { return e.err }

// withCode tags err with an exit code (nil stays nil).
func withCode(code int, err error) error {
	if err == nil {
		return nil
	}
	return &codedError{code: code, err: err}
}

// exitCode maps an error to the process exit code: nil is success, a
// tagged error carries its own code, anything else is a runtime error.
func exitCode(err error) int {
	if err == nil {
		return exitOK
	}
	var ce *codedError
	if errors.As(err, &ce) {
		return ce.code
	}
	return exitErr
}
