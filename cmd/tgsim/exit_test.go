package main

import (
	"errors"
	"fmt"
	"testing"
)

// TestExitCode pins the unified exit-code mapping documented in the
// README: tagged errors carry their code, untagged errors are runtime
// failures, nil is success.
func TestExitCode(t *testing.T) {
	plain := errors.New("boom")
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, exitOK},
		{"plain error", plain, exitErr},
		{"obs loss", withCode(exitObsLoss, plain), exitObsLoss},
		{"fleet partial", withCode(exitFleetPartial, plain), exitFleetPartial},
		{"wrapped tag survives", fmt.Errorf("context: %w", withCode(exitObsLoss, plain)), exitObsLoss},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("%s: exitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestWithCodePreservesChain ensures tagging does not hide the underlying
// error from errors.Is.
func TestWithCodePreservesChain(t *testing.T) {
	base := errors.New("inbox overflow")
	tagged := withCode(exitObsLoss, fmt.Errorf("-strict-obs: %w", base))
	if !errors.Is(tagged, base) {
		t.Fatal("withCode broke the error chain")
	}
	if withCode(exitObsLoss, nil) != nil {
		t.Fatal("withCode(nil) must stay nil")
	}
}
