// Command tgsim runs a complete federated-cyberinfrastructure simulation
// and prints the usage-modality measurement report: usage by submission
// mechanism, usage by classified modality (against ground truth), gateway
// end-user visibility, and per-machine utilization.
//
// Usage:
//
//	tgsim [-seed N] [-days D] [-policy fcfs|easy|conservative|fairshare]
//	      [-trace out.jsonl] [-csv-dir DIR] [-config cfg.json] [-dump-config cfg.json]
//	      [-maintenance-every D] [-quiet]
//	      [-chrome-trace t.json] [-obs-jsonl t.jsonl] [-obs-csv DIR]
//	      [-obs-sample-hours H] [-obs-max-events N] [-profile]
//	      [-http :PORT] [-progress]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/obs"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/scenario"
	"github.com/tgsim/tgmod/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tgsim:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Uint64("seed", 1, "scenario seed")
	days := flag.Float64("days", 30, "simulated horizon in days")
	policy := flag.String("policy", "easy", "batch policy: fcfs, easy, conservative, fairshare")
	tracePath := flag.String("trace", "", "write the accounting trace (JSON lines) to this file")
	quiet := flag.Bool("quiet", false, "suppress tables; print one summary line")
	maintDays := flag.Float64("maintenance-every", 0, "schedule recurring maintenance every N days (0 = none)")
	maintHours := flag.Float64("maintenance-hours", 8, "maintenance window length in hours")
	csvDir := flag.String("csv-dir", "", "also write every report as CSV into this directory")
	configPath := flag.String("config", "", "load the scenario from a JSON config file (overrides other scenario flags)")
	dumpConfig := flag.String("dump-config", "", "write the effective scenario config as JSON and exit")
	chromeTrace := flag.String("chrome-trace", "", "write a Chrome trace-event JSON file of job/transfer/gateway spans (open in Perfetto)")
	obsJSONL := flag.String("obs-jsonl", "", "write the span event stream as JSON lines to this file")
	obsCSV := flag.String("obs-csv", "", "write virtual-time metric CSVs (queue depth, utilization, ...) into this directory")
	obsSampleHours := flag.Float64("obs-sample-hours", 1, "metric sampling period in virtual hours (with -obs-csv)")
	obsMaxEvents := flag.Int("obs-max-events", 0, "cap the in-memory span buffer at N events (0 = unbounded); overflow is counted and dropped")
	profile := flag.Bool("profile", false, "print the kernel self-profile (wall-clock cost per event name) after the run")
	httpAddr := flag.String("http", "", "serve the live run console (dashboard /, /status JSON, /metrics OpenMetrics) on this address, e.g. :8080")
	progress := flag.Bool("progress", false, "print a live one-line progress snapshot to stderr")
	flag.Parse()

	var cfg scenario.Config
	if *configPath != "" {
		f, err := os.Open(*configPath)
		if err != nil {
			return err
		}
		cf, err := scenario.DecodeConfigFile(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg, err = cf.ToConfig()
		if err != nil {
			return err
		}
	} else {
		pol, err := scenario.ParsePolicy(*policy)
		if err != nil {
			return err
		}
		cfg = scenario.DefaultConfig(*seed)
		cfg.Horizon = des.Time(*days) * des.Day
		cfg.DrainTime = cfg.Horizon / 8
		cfg.Policy = pol
		if *maintDays > 0 {
			cfg.MaintenanceEvery = des.Time(*maintDays) * des.Day
			cfg.MaintenanceLength = des.Time(*maintHours) * des.Hour
		}
	}
	// Observability applies regardless of where the config came from.
	var spans *obs.Buffer
	if *chromeTrace != "" || *obsJSONL != "" {
		spans = obs.NewBufferCap(*obsMaxEvents)
		cfg.Observe.Recorder = spans
	}
	if *obsCSV != "" {
		if *obsSampleHours <= 0 {
			return fmt.Errorf("non-positive -obs-sample-hours")
		}
		cfg.Observe.SamplePeriod = des.Time(*obsSampleHours) * des.Hour
	}
	cfg.Observe.Profile = *profile

	// Live telemetry: the registry feeds the run console's /metrics; the
	// snapshot sink feeds both the console and the stderr progress line.
	// Everything runs on the simulation goroutine — the HTTP server only
	// reads published immutable snapshots.
	var reg *telemetry.Registry
	var console *telemetry.Console
	if *httpAddr != "" || *progress {
		reg = telemetry.New()
		cfg.Observe.Registry = reg
	}
	if *httpAddr != "" {
		console = telemetry.NewConsole()
		addr, err := console.Serve(*httpAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tgsim: live run console on http://%s/\n", addr)
	}
	if reg != nil {
		showProgress := *progress
		cfg.Observe.Snapshots = func(s *telemetry.Snapshot) {
			if console != nil {
				var buf bytes.Buffer
				if err := reg.WriteOpenMetrics(&buf); err == nil {
					console.Update(s, buf.Bytes())
				}
			}
			if showProgress {
				if s.Done {
					fmt.Fprintf(os.Stderr, "\r\x1b[K%s\n", s.Line())
				} else {
					fmt.Fprintf(os.Stderr, "\r\x1b[K%s", s.Line())
				}
			}
		}
	}

	if *dumpConfig != "" {
		cf, err := scenario.FromConfig(cfg)
		if err != nil {
			return err
		}
		f, err := os.Create(*dumpConfig)
		if err != nil {
			return err
		}
		if err := cf.Encode(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	res, err := scenario.Run(cfg)
	if err != nil {
		return err
	}
	cl := core.NewClassifier(core.Config{LargestCores: res.LargestCores})
	results := cl.Classify(res.Central)

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := res.Central.Export(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	// Observability exports.
	if spans != nil && spans.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "tgsim: span buffer cap reached: %d events dropped (raise -obs-max-events)\n",
			spans.Dropped())
	}
	if spans != nil && *chromeTrace != "" {
		if err := writeTo(*chromeTrace, spans.WriteChromeTrace); err != nil {
			return err
		}
	}
	if spans != nil && *obsJSONL != "" {
		if err := writeTo(*obsJSONL, spans.WriteJSONL); err != nil {
			return err
		}
	}
	if *obsCSV != "" && res.Sampler != nil {
		if err := os.MkdirAll(*obsCSV, 0o755); err != nil {
			return err
		}
		for _, group := range res.Sampler.Groups() {
			group := group
			path := filepath.Join(*obsCSV, group+".csv")
			if err := writeTo(path, func(w io.Writer) error {
				return res.Sampler.WriteCSV(group, w)
			}); err != nil {
				return err
			}
		}
	}

	var saveCSV func(name string, t *report.Table) error
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		saveCSV = func(name string, t *report.Table) error {
			f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
			if err != nil {
				return err
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	} else {
		saveCSV = func(string, *report.Table) error { return nil }
	}

	if *quiet {
		fmt.Printf("jobs=%d NUs=%.0f users=%d events=%d\n",
			len(res.Central.Jobs()), res.Central.TotalNUs(),
			res.Central.DistinctUsers(), res.Kernel.Executed())
		return printProfile(res)
	}

	fmt.Printf("tgsim: %s federation, %d cores, %.1f simulated days, policy=%s, seed=%d\n",
		res.Federation.Name, res.Federation.TotalCores(),
		float64(cfg.Horizon/des.Day), cfg.Policy, cfg.Seed)
	fmt.Printf("jobs finished: %d   NUs charged: %s   kernel events: %d\n\n",
		res.Finished, report.FormatFloat(res.Central.TotalNUs()), res.Kernel.Executed())

	// Mechanism breakdown (what accounting saw before modality work).
	mech := report.NewTable("Usage by submission mechanism",
		"mechanism", "jobs", "NUs", "accounts")
	for _, r := range core.MechanismReport(res.Central) {
		mech.AddRowf(r.Mechanism, r.Jobs, r.NUs, r.AccountUsers)
	}
	if err := mech.WriteText(os.Stdout); err != nil {
		return err
	}
	if err := saveCSV("mechanism", mech); err != nil {
		return err
	}
	fmt.Println()

	// Modality breakdown (the contribution).
	rep := core.BuildReport(res.Central, results)
	mod := report.NewTable("Usage by measured modality",
		"modality", "jobs", "NUs", "NU share", "accounts", "end users")
	for _, row := range rep.Rows {
		mod.AddRowf(string(row.Modality), row.Jobs, row.NUs,
			report.Percent(row.NUs/rep.TotalNUs), row.AccountUsers, row.EndUsers)
	}
	if err := mod.WriteText(os.Stdout); err != nil {
		return err
	}
	if err := saveCSV("modality", mod); err != nil {
		return err
	}
	fmt.Println()

	// Validation against ground truth.
	conf := core.Validate(res.Central, results)
	val := report.NewTable("Classifier validation vs ground truth",
		"modality", "precision", "recall", "F1")
	for _, label := range core.ModalityLabels() {
		val.AddRowf(label, fmt.Sprintf("%.3f", conf.Precision(label)),
			fmt.Sprintf("%.3f", conf.Recall(label)),
			fmt.Sprintf("%.3f", conf.F1(label)))
	}
	val.AddRowf("OVERALL ACCURACY", "", "", fmt.Sprintf("%.3f", conf.Accuracy()))
	if err := val.WriteText(os.Stdout); err != nil {
		return err
	}
	if err := saveCSV("validation", val); err != nil {
		return err
	}
	fmt.Println()

	// Gateway visibility.
	v := core.MeasureGatewayVisibility(res.Central)
	fmt.Printf("Gateway visibility: %d jobs, %d community accounts hide %d end users\n\n",
		v.GatewayJobs, v.CommunityAccounts, v.RecoveredEndUsers)

	// Usage by field of science.
	fields := report.NewTable("Usage by field of science", "field", "jobs", "NUs", "projects")
	for i, r := range core.FieldReport(res.Central) {
		if i >= 8 {
			break // top consumers only; the tail is in the CSV exports
		}
		fields.AddRowf(r.Field, r.Jobs, r.NUs, r.Projects)
	}
	if err := fields.WriteText(os.Stdout); err != nil {
		return err
	}
	if err := saveCSV("fields", fields); err != nil {
		return err
	}
	fmt.Println()

	// Machine utilization.
	util := report.NewTable("Machine utilization", "machine", "cores", "utilization", "preemptions")
	for _, m := range res.Federation.Machines() {
		s := res.Schedulers[m.ID]
		util.AddRowf(m.ID, m.BatchCores(), report.Percent(s.Utilization()), int(s.Preemptions()))
	}
	if err := util.WriteText(os.Stdout); err != nil {
		return err
	}
	if err := saveCSV("machines", util); err != nil {
		return err
	}
	return printProfile(res)
}

// printProfile renders the kernel self-profile when one was collected.
func printProfile(res *scenario.Result) error {
	if res.Profiler == nil {
		return nil
	}
	fmt.Println()
	fmt.Println(res.Profiler.Summary())
	return res.Profiler.Table().WriteText(os.Stdout)
}

// writeTo creates path, hands it to write, and closes it, reporting the
// first error.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
