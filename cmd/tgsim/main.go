// Command tgsim runs a complete federated-cyberinfrastructure simulation
// and prints the usage-modality measurement report: usage by submission
// mechanism, usage by classified modality (against ground truth), gateway
// end-user visibility, and per-machine utilization.
//
// Usage:
//
//	tgsim [-seed N] [-days D] [-scale quick|full] [-policy fcfs|easy|conservative|fairshare]
//	      [-trace out.jsonl] [-csv-dir DIR] [-config cfg.json] [-dump-config cfg.json]
//	      [-maintenance-every D] [-quiet]
//	      [-faults X] [-mtbf DAYS] [-checkpoint MINUTES]
//	      [-chrome-trace t.json] [-obs-jsonl t.jsonl] [-obs-csv DIR]
//	      [-obs-sample-hours H] [-obs-max-events N] [-strict-obs] [-profile]
//	      [-cpuprofile f.pprof] [-memprofile f.pprof] [-pprof]
//	      [-slo] [-analysis] [-export DIR]
//	      [-http :PORT] [-http-hold] [-progress]
//	      [-stream] [-stream-buf N] [-modality-out FILE]
//	      [-replay DIR] [-replay-speed X]
//	      [-reps N] [-parallel P]
//
// With -reps N > 1 tgsim runs a replication fleet: N independent
// replications at seeds seed..seed+N-1 across P workers, reporting
// mean ± 95% CI tables instead of single-run point estimates. Per-run
// observability flags are ignored in fleet mode; -export writes the
// merged fleet metrics.
//
// With -stream the streaming modality observatory rides the run live:
// every accounting flush feeds an online classifier whose windowed usage
// and drift views the console serves at /modalities and /drift. With
// -replay DIR the same pipeline replays an exported run directory
// instead of simulating, and reproduces the original run's post-run
// modality report byte-identically (compare with -modality-out).
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/tgsim/tgmod/internal/analysis"
	"github.com/tgsim/tgmod/internal/core"
	"github.com/tgsim/tgmod/internal/des"
	"github.com/tgsim/tgmod/internal/experiments"
	"github.com/tgsim/tgmod/internal/faults"
	"github.com/tgsim/tgmod/internal/fleet"
	"github.com/tgsim/tgmod/internal/obs"
	"github.com/tgsim/tgmod/internal/observatory"
	"github.com/tgsim/tgmod/internal/perf"
	"github.com/tgsim/tgmod/internal/regress"
	"github.com/tgsim/tgmod/internal/report"
	"github.com/tgsim/tgmod/internal/scenario"
	"github.com/tgsim/tgmod/internal/slo"
	"github.com/tgsim/tgmod/internal/stream"
	"github.com/tgsim/tgmod/internal/telemetry"
)

func main() {
	err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tgsim:", err)
	}
	os.Exit(exitCode(err))
}

func run() error {
	seed := flag.Uint64("seed", 1, "scenario seed")
	days := flag.Float64("days", 30, "simulated horizon in days")
	policy := flag.String("policy", "easy", "batch policy engine: fcfs, easy, conservative, fairshare, gang, priority")
	tracePath := flag.String("trace", "", "write the accounting trace (JSON lines) to this file")
	quiet := flag.Bool("quiet", false, "suppress tables; print one summary line")
	maintDays := flag.Float64("maintenance-every", 0, "schedule recurring maintenance every N days (0 = none)")
	maintHours := flag.Float64("maintenance-hours", 8, "maintenance window length in hours")
	csvDir := flag.String("csv-dir", "", "also write every report as CSV into this directory")
	configPath := flag.String("config", "", "load the scenario from a JSON config file (overrides other scenario flags)")
	dumpConfig := flag.String("dump-config", "", "write the effective scenario config as JSON and exit")
	chromeTrace := flag.String("chrome-trace", "", "write a Chrome trace-event JSON file of job/transfer/gateway spans (open in Perfetto)")
	obsJSONL := flag.String("obs-jsonl", "", "write the span event stream as JSON lines to this file")
	obsCSV := flag.String("obs-csv", "", "write virtual-time metric CSVs (queue depth, utilization, ...) into this directory")
	obsSampleHours := flag.Float64("obs-sample-hours", 1, "metric sampling period in virtual hours (with -obs-csv)")
	obsMaxEvents := flag.Int("obs-max-events", 0, "cap the in-memory span buffer at N events (0 = unbounded); overflow is counted and dropped")
	profile := flag.Bool("profile", false, "print the kernel self-profile (wall-clock cost per event name) after the run")
	httpAddr := flag.String("http", "", "serve the live run console (dashboard /, /status JSON, /metrics OpenMetrics) on this address, e.g. :8080")
	httpHold := flag.Bool("http-hold", false, "with -http: keep serving the final snapshot after the run until interrupted")
	progress := flag.Bool("progress", false, "print a live one-line progress snapshot to stderr")
	scale := flag.String("scale", "", "run the standard measurement scenario at a scale (quick or full); overrides -days and the default workload mix")
	sloFlag := flag.Bool("slo", false, "evaluate per-modality virtual-time SLOs and print the conformance table")
	analysisFlag := flag.Bool("analysis", false, "reconstruct job timelines and print wait-decomposition and critical-path tables")
	exportDir := flag.String("export", "", "write the run's exports (metrics.om, obs.jsonl, acct.jsonl) into this directory for tgdiff")
	strictObs := flag.Bool("strict-obs", false, "exit non-zero when the span buffer dropped events")
	reps := flag.Int("reps", 1, "run a replication fleet of N seeds (seed, seed+1, ...) and report mean ± 95% CI tables")
	parallel := flag.Int("parallel", 0, "fleet worker count (with -reps; 0 = GOMAXPROCS)")
	faultsX := flag.Float64("faults", 0, "enable deterministic fault injection at this intensity (1 = nominal MTBFs, 2 = twice as often; 0 = off)")
	mtbfDays := flag.Float64("mtbf", 0, "override the machine crash MTBF in days (with -faults; 0 keeps the default)")
	checkpointMin := flag.Float64("checkpoint", 0, "checkpoint/restart every N minutes: killed and preempted jobs resume from the last checkpoint (0 = off)")
	streamFlag := flag.Bool("stream", false, "attach the streaming modality observatory: live windowed usage, online classification, and drift served at /modalities and /drift")
	streamBuf := flag.Int("stream-buf", 0, "cap the streaming ingest inbox at N records (0 = unbounded); overflow is counted, dropped, and fails -strict-obs")
	modalityOut := flag.String("modality-out", "", "write the usage-by-modality table to this file (the replay-equivalence comparison anchor)")
	replayDir := flag.String("replay", "", "replay an exported run directory through the streaming pipeline instead of simulating")
	replaySpeed := flag.Float64("replay-speed", 0, "replay pacing in virtual seconds per wall second (0 = as fast as possible)")
	push := flag.String("push", "", "stream telemetry to an observatory daemon (tgobsd) at host:port or unix:PATH; same-seed runs stay byte-identical with or without it")
	pushID := flag.String("push-id", "", "run identity to request from the observatory daemon (fleet replications get -rNN suffixes; empty = daemon-assigned)")
	pushRetry := flag.Int("push-retry", 12, "max consecutive attempts when (re)connecting to the observatory daemon before the push gives up (0 disables reconnection)")
	pushSpill := flag.String("push-spill", "", "path for the push replay spill journal (fleet replications get -rNN suffixes; empty = private temp file)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (open with go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an end-of-run heap profile to this file (open with go tool pprof)")
	pprofFlag := flag.Bool("pprof", false, "with -http: mount the net/http/pprof endpoints on the run console at /debug/pprof/")
	flag.Parse()

	// Runtime profiles wrap every mode — replay, fleet, and single runs —
	// so the profile covers exactly what the process did. Profiling only
	// reads Go runtime state: a profiled run's exports stay byte-identical
	// to an unprofiled same-seed run (CI proves this on the determinism
	// gate by profiling one leg).
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()
	if *pprofFlag && *httpAddr == "" {
		return fmt.Errorf("-pprof requires -http (the endpoints mount on the run console)")
	}

	if *replayDir != "" {
		return runReplayMode(*replayDir, *replaySpeed, *streamBuf,
			*exportDir, *modalityOut, *csvDir, *quiet)
	}

	// buildCfg rebuilds the scenario for a seed. Single runs call it once;
	// fleet mode calls it once per replication so every replication gets
	// private (stateful) workload generators.
	buildCfg := func(seed uint64) (scenario.Config, error) {
		if *configPath != "" {
			f, err := os.Open(*configPath)
			if err != nil {
				return scenario.Config{}, err
			}
			cf, err := scenario.DecodeConfigFile(f)
			f.Close()
			if err != nil {
				return scenario.Config{}, err
			}
			return cf.ToConfig()
		}
		pol, err := scenario.ParsePolicy(*policy)
		if err != nil {
			return scenario.Config{}, err
		}
		var cfg scenario.Config
		if *scale != "" {
			// The standard measurement scenario the experiments and CI use,
			// so CLI runs are directly comparable with published tables.
			var sc experiments.Scale
			switch *scale {
			case "quick":
				sc = experiments.Quick
			case "full":
				sc = experiments.Full
			default:
				return scenario.Config{}, fmt.Errorf("unknown -scale %q (want quick or full)", *scale)
			}
			cfg = experiments.StandardConfig(seed, sc)
		} else {
			cfg = scenario.New(seed,
				scenario.WithHorizon(des.Time(*days)*des.Day),
			)
			cfg.DrainTime = cfg.Horizon / 8
		}
		cfg.Policy = pol
		if *maintDays > 0 {
			cfg.MaintenanceEvery = des.Time(*maintDays) * des.Day
			cfg.MaintenanceLength = des.Time(*maintHours) * des.Hour
		}
		if *faultsX > 0 {
			fc := faults.DefaultConfig()
			fc.Intensity = *faultsX
			if *mtbfDays > 0 {
				fc.MachineMTBF = des.Time(*mtbfDays) * des.Day
			}
			cfg.Faults = fc
		}
		if *checkpointMin > 0 {
			cfg.CheckpointRestart = true
			cfg.CheckpointInterval = des.Time(*checkpointMin) * des.Minute
		}
		return cfg, nil
	}

	cfg, err := buildCfg(*seed)
	if err != nil {
		return err
	}

	if *reps > 1 {
		// Fleet mode: per-run observability flags (tracing, SLOs, the run
		// console, profiles) describe ONE kernel and do not compose across
		// N concurrent replications, so they are ignored here; -export
		// writes the merged fleet metrics instead of a single run dir.
		return runFleetMode(fleetOpts{
			reps: *reps, parallel: *parallel, baseSeed: *seed,
			buildCfg: buildCfg, baseCfg: cfg,
			quiet: *quiet, exportDir: *exportDir, csvDir: *csvDir,
			push: *push, pushID: *pushID,
			pushRetry: *pushRetry, pushSpill: *pushSpill,
			progress: *progress, strictObs: *strictObs,
		})
	}
	// Observability applies regardless of where the config came from. The
	// span buffer is needed by any consumer of the event stream: trace
	// exports, timeline analysis, and the tgdiff run-dir export.
	var spans *obs.Buffer
	if *chromeTrace != "" || *obsJSONL != "" || *analysisFlag || *exportDir != "" {
		spans = obs.NewBufferCap(*obsMaxEvents)
		cfg.Observe.Recorder = spans
	}
	var sloEval *slo.Evaluator
	if *sloFlag {
		var err error
		if sloEval, err = slo.New(); err != nil {
			return err
		}
		cfg.Observe.SLO = sloEval
	}
	if *obsCSV != "" {
		if *obsSampleHours <= 0 {
			return fmt.Errorf("non-positive -obs-sample-hours")
		}
		cfg.Observe.SamplePeriod = des.Time(*obsSampleHours) * des.Hour
	}
	// -profile attaches the phase-attribution profiler (internal/perf): it
	// embeds the classic per-event-name self-profile and splits the wall
	// clock across FEL/handler/accounting/classify phases. Built unbound —
	// scenario.Run binds the kernel during assembly.
	var phases *perf.Profiler
	if *profile {
		phases = perf.New(nil)
		cfg.Observers = append(cfg.Observers, scenario.ProfilePhases(phases))
	}

	// Live telemetry: the registry feeds the run console's /metrics; the
	// snapshot sink feeds both the console and the stderr progress line.
	// Everything runs on the simulation goroutine — the HTTP server only
	// reads published immutable snapshots.
	var reg *telemetry.Registry
	var console *telemetry.Console
	if *httpAddr != "" || *progress || *exportDir != "" {
		reg = telemetry.New()
		cfg.Observe.Registry = reg
	}
	// The streaming modality observatory: a processor tapped into the
	// accounting-flush seam, classifying records online and serving
	// windowed usage and drift through the console.
	var proc *stream.Processor
	if *streamFlag {
		largest, err := largestBatchCores(cfg)
		if err != nil {
			return err
		}
		proc = stream.New(stream.Config{
			LargestCores: largest, InboxCap: *streamBuf, Registry: reg,
		})
		cfg.Observers = append(cfg.Observers, stream.Tap(proc))
	}
	if *httpAddr != "" {
		console = telemetry.NewConsole()
		if *pprofFlag {
			console.EnablePprof()
		}
		addr, err := console.Serve(*httpAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tgsim: live run console on http://%s/\n", addr)
	}
	// The runtime sampler feeds the wall-clock-only tg_runtime_* family:
	// sampled on the snapshot cadence (a SnapshotExtra, so /status carries
	// the runtime block) and served as its own exposition at
	// /metrics/runtime — never spliced into the deterministic /metrics.
	var sampler *perf.RuntimeSampler
	if console != nil || *progress {
		sampler = perf.NewRuntimeSampler()
		cfg.Observers = append(cfg.Observers, scenario.DecorateSnapshots(func(s *telemetry.Snapshot) {
			sampler.Sample(s.Events)
			snap := sampler.Snap()
			s.Runtime = &snap
		}))
	}
	// Declared ahead of the snapshot closure so the console can serve the
	// push transport counters; assigned when -push dials below.
	var pusher *observatory.Pusher
	if reg != nil {
		showProgress := *progress
		cfg.Observe.Snapshots = func(s *telemetry.Snapshot) {
			if console != nil {
				var buf bytes.Buffer
				if err := reg.WriteOpenMetrics(&buf); err == nil {
					console.Update(s, buf.Bytes())
				}
				if sampler != nil {
					console.PublishPage("/metrics/runtime",
						"application/openmetrics-text; version=1.0.0; charset=utf-8",
						sampler.OpenMetrics())
				}
				if pusher != nil {
					// Wall-clock transport counters: like /metrics/runtime,
					// a console-only page the deterministic exports never see.
					console.PublishPage("/metrics/push",
						"application/openmetrics-text; version=1.0.0; charset=utf-8",
						append(pusher.AppendOpenMetrics(nil), "# EOF\n"...))
				}
				if proc != nil {
					console.PublishJSON("/modalities", proc.ModalitiesJSON())
					console.PublishJSON("/drift", proc.DriftJSON())
				}
			}
			if showProgress {
				if s.Done {
					fmt.Fprintf(os.Stderr, "\r\x1b[K%s\n", s.Line())
				} else {
					fmt.Fprintf(os.Stderr, "\r\x1b[K%s", s.Line())
				}
			}
		}
	}

	if *dumpConfig != "" {
		cf, err := scenario.FromConfig(cfg)
		if err != nil {
			return err
		}
		f, err := os.Create(*dumpConfig)
		if err != nil {
			return err
		}
		if err := cf.Encode(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	// Observatory push: mount the pusher on the packet tap and snapshot
	// sink (zero-perturbation seams only, so the run's bytes are identical
	// with or without it) and stream to the daemon as the run progresses.
	endTime := float64(cfg.Horizon + cfg.DrainTime)
	if *push != "" {
		largest, err := largestBatchCores(cfg)
		if err != nil {
			return err
		}
		pusher, err = observatory.DialPush(*push, observatory.Hello{
			Run: *pushID, Seed: cfg.Seed, LargestCores: largest,
			EndTimeS: endTime, Source: "tgsim",
		}, pushOptions(*pushRetry, *pushSpill))
		if err != nil {
			return err
		}
		cfg.Observers = append(cfg.Observers, pusher.Observer(reg))
		fmt.Fprintf(os.Stderr, "tgsim: pushing telemetry to %s as run %q\n", *push, pusher.RunID())
	}

	res, err := scenario.Run(cfg)
	if err != nil {
		if pusher != nil {
			pusher.Abort()
		}
		return err
	}
	if proc != nil {
		// Close the stream at the true end of the run so trailing windows
		// expire exactly as far as the simulation reached, then publish the
		// final payloads (the last snapshot may predate the final flush).
		proc.Advance(cfg.Horizon + cfg.DrainTime)
		if console != nil {
			console.PublishJSON("/modalities", proc.ModalitiesJSON())
			console.PublishJSON("/drift", proc.DriftJSON())
		}
	}
	var pushFinishErr error
	if pusher != nil {
		pushFinishErr = pusher.Finish(endTime)
	}
	endClassify := res.Phases.Region(perf.PhaseClassify)
	cl := core.NewClassifier(core.Config{LargestCores: res.LargestCores})
	results := cl.Classify(res.Central)
	rep := core.BuildReport(res.Central, results)
	endClassify()
	mod := modalityTable(rep)
	if *modalityOut != "" {
		if err := writeTo(*modalityOut, mod.WriteText); err != nil {
			return err
		}
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := res.Central.Export(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	// The epilogue runs on every exit path after the simulation: kernel
	// profile, console hold/shutdown, and the strict-observability verdict.
	epilogue := func() error {
		if err := printProfile(res); err != nil {
			return err
		}
		if console != nil {
			if *httpHold {
				fmt.Fprintln(os.Stderr, "tgsim: -http-hold: run console serving the final snapshot; interrupt (ctrl-C) to exit")
				ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
				<-ctx.Done()
				stop()
			}
			if err := console.Close(2 * time.Second); err != nil {
				return err
			}
		}
		if *strictObs && spans != nil && spans.Dropped() > 0 {
			return withCode(exitObsLoss,
				fmt.Errorf("-strict-obs: span buffer dropped %d events", spans.Dropped()))
		}
		if *strictObs && proc != nil && proc.Dropped() > 0 {
			return withCode(exitObsLoss,
				fmt.Errorf("-strict-obs: stream inbox dropped %d records (raise -stream-buf or use 0 for unbounded)", proc.Dropped()))
		}
		if pusher != nil {
			if st := pusher.Stats(); st.Reconnects > 0 {
				fmt.Fprintf(os.Stderr, "tgsim: observatory push survived %d disconnect(s): %d frame(s) replayed, %d lost\n",
					st.Reconnects, st.Replayed, st.PacketsLost)
			}
		}
		if pusher != nil && (pushFinishErr != nil || pusher.Lossy()) {
			st := pusher.Stats()
			err := pushFinishErr
			if err == nil {
				err = fmt.Errorf("push lost %d packet frames", st.PacketsLost)
			}
			if *strictObs {
				return withCode(exitObsLoss, fmt.Errorf("-strict-obs: daemon-side record incomplete: %w", err))
			}
			fmt.Fprintf(os.Stderr, "tgsim: WARNING: observatory push incomplete: %v\n", err)
		}
		return nil
	}

	// Observability exports. A truncated span buffer silently invalidates
	// every event-stream consumer (traces, analysis, tgdiff exports), so
	// dropping is loud; -strict-obs upgrades it to a failure.
	if spans != nil && spans.Dropped() > 0 {
		fmt.Fprintln(os.Stderr, strings.Repeat("*", 70))
		fmt.Fprintf(os.Stderr, "* WARNING: observability buffer overflowed: %d events DROPPED.\n", spans.Dropped())
		fmt.Fprintln(os.Stderr, "* Exported traces and analyses below are built from a truncated")
		fmt.Fprintln(os.Stderr, "* stream. Raise -obs-max-events (or use 0 for unbounded).")
		fmt.Fprintln(os.Stderr, strings.Repeat("*", 70))
	}
	if spans != nil && *chromeTrace != "" {
		if err := writeTo(*chromeTrace, spans.WriteChromeTrace); err != nil {
			return err
		}
	}
	if spans != nil && *obsJSONL != "" {
		if err := writeTo(*obsJSONL, spans.WriteJSONL); err != nil {
			return err
		}
	}
	if *obsCSV != "" && res.Sampler != nil {
		if err := os.MkdirAll(*obsCSV, 0o755); err != nil {
			return err
		}
		for _, group := range res.Sampler.Groups() {
			group := group
			path := filepath.Join(*obsCSV, group+".csv")
			if err := writeTo(path, func(w io.Writer) error {
				return res.Sampler.WriteCSV(group, w)
			}); err != nil {
				return err
			}
		}
	}
	if *exportDir != "" {
		man := &regress.Manifest{
			Seed:         cfg.Seed,
			LargestCores: res.LargestCores,
			EndTimeS:     float64(cfg.Horizon + cfg.DrainTime),
		}
		if err := regress.WriteRunDir(*exportDir, reg, spans, res.Central, man); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tgsim: run exported to %s (diff runs with tgdiff, replay with -replay)\n", *exportDir)
	}

	var saveCSV func(name string, t *report.Table) error
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		saveCSV = func(name string, t *report.Table) error {
			f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
			if err != nil {
				return err
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	} else {
		saveCSV = func(string, *report.Table) error { return nil }
	}

	if *quiet {
		fmt.Printf("jobs=%d NUs=%.0f users=%d events=%d\n",
			len(res.Central.Jobs()), res.Central.TotalNUs(),
			res.Central.DistinctUsers(), res.Kernel.Executed())
		return epilogue()
	}

	fmt.Printf("tgsim: %s federation, %d cores, %.1f simulated days, policy=%s, seed=%d\n",
		res.Federation.Name, res.Federation.TotalCores(),
		float64(cfg.Horizon/des.Day), cfg.Policy, cfg.Seed)
	fmt.Printf("jobs finished: %d   NUs charged: %s   kernel events: %d\n\n",
		res.Finished, report.FormatFloat(res.Central.TotalNUs()), res.Kernel.Executed())

	// Mechanism breakdown (what accounting saw before modality work).
	mech := report.NewTable("Usage by submission mechanism",
		"mechanism", "jobs", "NUs", "accounts")
	for _, r := range core.MechanismReport(res.Central) {
		mech.AddRowf(r.Mechanism, r.Jobs, r.NUs, r.AccountUsers)
	}
	if err := mech.WriteText(os.Stdout); err != nil {
		return err
	}
	if err := saveCSV("mechanism", mech); err != nil {
		return err
	}
	fmt.Println()

	// Modality breakdown (the contribution).
	if err := mod.WriteText(os.Stdout); err != nil {
		return err
	}
	if err := saveCSV("modality", mod); err != nil {
		return err
	}
	fmt.Println()

	// Streaming observatory summary (only on -stream runs).
	if proc != nil {
		dr := proc.Drift()
		snap := proc.Snap()
		fmt.Printf("Stream: %d records ingested, %d dropped (inbox high water %d); "+
			"online drift %.3f over %d scored jobs\n\n",
			snap.Ingested, snap.Dropped, snap.HighWater, dr.Rate, dr.Events)
	}

	// Validation against ground truth.
	conf := core.Validate(res.Central, results)
	val := report.NewTable("Classifier validation vs ground truth",
		"modality", "precision", "recall", "F1")
	for _, label := range core.ModalityLabels() {
		val.AddRowf(label, fmt.Sprintf("%.3f", conf.Precision(label)),
			fmt.Sprintf("%.3f", conf.Recall(label)),
			fmt.Sprintf("%.3f", conf.F1(label)))
	}
	val.AddRowf("OVERALL ACCURACY", "", "", fmt.Sprintf("%.3f", conf.Accuracy()))
	if err := val.WriteText(os.Stdout); err != nil {
		return err
	}
	if err := saveCSV("validation", val); err != nil {
		return err
	}
	fmt.Println()

	// Gateway visibility.
	v := core.MeasureGatewayVisibility(res.Central)
	fmt.Printf("Gateway visibility: %d jobs, %d community accounts hide %d end users\n\n",
		v.GatewayJobs, v.CommunityAccounts, v.RecoveredEndUsers)

	// Usage by field of science.
	fields := report.NewTable("Usage by field of science", "field", "jobs", "NUs", "projects")
	for i, r := range core.FieldReport(res.Central) {
		if i >= 8 {
			break // top consumers only; the tail is in the CSV exports
		}
		fields.AddRowf(r.Field, r.Jobs, r.NUs, r.Projects)
	}
	if err := fields.WriteText(os.Stdout); err != nil {
		return err
	}
	if err := saveCSV("fields", fields); err != nil {
		return err
	}
	fmt.Println()

	// Machine utilization.
	util := report.NewTable("Machine utilization", "machine", "cores", "utilization", "preemptions")
	for _, m := range res.Federation.Machines() {
		s := res.Schedulers[m.ID]
		util.AddRowf(m.ID, m.BatchCores(), report.Percent(s.Utilization()), int(s.Stats().Preemptions))
	}
	if err := util.WriteText(os.Stdout); err != nil {
		return err
	}
	if err := saveCSV("machines", util); err != nil {
		return err
	}

	// Fault-injection summary (only on -faults runs).
	if res.Faults != nil {
		st := res.Faults.Stats()
		fmt.Printf("\nFaults: %d crashes (%d jobs killed), %d node failures (%d killed), "+
			"%d link degrades, %d partitions, %d gateway flaps\n",
			st.MachineCrashes, st.CrashKills, st.NodeFailures, st.NodeKills,
			st.LinkDegrades, st.LinkPartitions, st.GatewayFlaps)
		fmt.Printf("Resilience: %d failovers, %d requeues, %d gateway retries, "+
			"%d transfer restarts, %d give-ups\n",
			st.Failovers, st.Requeues, st.GatewayRetries, st.TransferRestarts, st.GiveUps)
	}

	// Wait decomposition and critical paths (the trace-analysis layer).
	if *analysisFlag {
		fmt.Println()
		ts, err := analysis.Reconstruct(spans.Events())
		if err != nil {
			return err
		}
		decomp := analysis.DecompositionTable(analysis.Decompose(ts))
		if err := decomp.WriteText(os.Stdout); err != nil {
			return err
		}
		if err := saveCSV("decomposition", decomp); err != nil {
			return err
		}
		if ts.Incomplete > 0 || ts.UnattributedTransfers > 0 {
			fmt.Printf("(%d jobs still queued or running at trace end; %d transfers not job-bound)\n",
				ts.Incomplete, ts.UnattributedTransfers)
		}
		fmt.Println()
		cp := analysis.CriticalPathTable(analysis.CriticalPaths(res.Central.Jobs()), 10)
		if err := cp.WriteText(os.Stdout); err != nil {
			return err
		}
		if err := saveCSV("critical_paths", cp); err != nil {
			return err
		}
	}

	// SLO conformance.
	if sloEval != nil {
		fmt.Println()
		tab := sloEval.Table()
		if err := tab.WriteText(os.Stdout); err != nil {
			return err
		}
		if err := saveCSV("slo", tab); err != nil {
			return err
		}
		if failed := sloEval.Failed(); len(failed) > 0 {
			fmt.Printf("SLO objectives MISSED: %s\n", strings.Join(failed, ", "))
		}
	}
	return epilogue()
}

// fleetOpts carries the -reps mode configuration.
type fleetOpts struct {
	reps, parallel int
	baseSeed       uint64
	buildCfg       func(uint64) (scenario.Config, error)
	// baseCfg is the already-built base-seed config; fleet-wide scenario
	// shape (horizon, federation) is read from it.
	baseCfg   scenario.Config
	quiet     bool
	exportDir string
	csvDir    string
	push      string
	pushID    string
	pushRetry int
	pushSpill string
	progress  bool
	strictObs bool
}

// pushOptions maps the -push-retry/-push-spill flags onto the pusher's
// fault-tolerance options. retry <= 0 disables reconnection outright
// (the pre-resilience single-shot behavior).
func pushOptions(retry int, spill string) observatory.PushOptions {
	o := observatory.DefaultPushOptions()
	if retry <= 0 {
		o.Retry.MaxAttempts = -1
	} else {
		o.Retry.MaxAttempts = retry
	}
	o.SpillPath = spill
	return o
}

// runFleetMode executes -reps replications in parallel and prints the
// cross-replication tables: fleet summary, per-modality usage with 95%
// confidence intervals, and per-mechanism usage with CIs. With -progress
// each replication streams per-worker progress lines; with -push every
// replication is pushed to the observatory daemon as its own run.
func runFleetMode(o fleetOpts) error {
	// Validate the configuration once, eagerly, so flag errors surface
	// before N workers each trip over them.
	if _, err := o.buildCfg(o.baseSeed); err != nil {
		return err
	}
	endTime := float64(o.baseCfg.Horizon + o.baseCfg.DrainTime)
	largest, lerr := largestBatchCores(o.baseCfg)
	if lerr != nil {
		return lerr
	}
	pushBase := o.pushID
	if pushBase == "" {
		pushBase = "fleet"
	}
	var (
		pushMu  sync.Mutex
		pushers []*observatory.Pusher
		printer *fleetProgress
	)
	if o.progress {
		printer = &fleetProgress{}
	}
	spec := fleet.Spec{
		Reps:     o.reps,
		Parallel: o.parallel,
		BaseSeed: o.baseSeed,
		Build: func(seed uint64) scenario.Config {
			cfg, err := o.buildCfg(seed)
			if err != nil {
				panic(err) // validated above; the fleet reports a panic as the rep's error
			}
			return cfg
		},
	}
	if o.progress || o.push != "" {
		spec.Observe = func(rep int, seed uint64, reg *telemetry.Registry) []scenario.Observer {
			var obs []scenario.Observer
			// Progress first, pusher second: the pusher composes with (never
			// replaces) an existing snapshot sink, so both see every snapshot.
			if printer != nil {
				obs = append(obs, scenario.StreamSnapshots(func(s *telemetry.Snapshot) {
					printer.update(rep, seed, s)
				}))
			}
			if o.push != "" {
				spill := ""
				if o.pushSpill != "" {
					spill = fmt.Sprintf("%s-r%02d", o.pushSpill, rep)
				}
				p, err := observatory.DialPush(o.push, observatory.Hello{
					Run:  fmt.Sprintf("%s-r%02d", pushBase, rep),
					Seed: seed, LargestCores: largest,
					EndTimeS: endTime, Source: "fleet",
				}, pushOptions(o.pushRetry, spill))
				if err != nil {
					fmt.Fprintf(os.Stderr, "tgsim: fleet rep %d: push: %v\n", rep, err)
				} else {
					pushMu.Lock()
					pushers = append(pushers, p)
					pushMu.Unlock()
					obs = append(obs, p.Observer(reg))
				}
			}
			return obs
		}
	}
	res, err := fleet.Run(spec)
	if printer != nil {
		printer.finish()
	}
	// All replications are done; close every push and collect losses.
	var pushLoss error
	var reconnects, replayed uint64
	for _, p := range pushers {
		if ferr := p.Finish(endTime); ferr != nil && pushLoss == nil {
			pushLoss = ferr
		} else if p.Lossy() && pushLoss == nil {
			pushLoss = fmt.Errorf("run %s lost %d packet frames", p.RunID(), p.Stats().PacketsLost)
		}
		st := p.Stats()
		reconnects += st.Reconnects
		replayed += st.Replayed
	}
	if reconnects > 0 {
		fmt.Fprintf(os.Stderr, "tgsim: observatory push survived %d disconnect(s) across the fleet: %d frame(s) replayed\n",
			reconnects, replayed)
	}
	if o.push != "" && len(pushers) < o.reps && pushLoss == nil {
		pushLoss = fmt.Errorf("%d of %d replications could not connect", o.reps-len(pushers), o.reps)
	}
	if res == nil {
		return err
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tgsim: fleet:", err)
		err = withCode(exitFleetPartial,
			fmt.Errorf("fleet: %d of %d replications failed", len(res.Reps)-res.Succeeded(), len(res.Reps)))
	}
	if pushLoss != nil {
		if o.strictObs {
			return withCode(exitObsLoss, fmt.Errorf("-strict-obs: daemon-side record incomplete: %w", pushLoss))
		}
		fmt.Fprintf(os.Stderr, "tgsim: WARNING: observatory push incomplete: %v\n", pushLoss)
	}

	if o.exportDir != "" {
		if werr := regress.WriteRunDir(o.exportDir, res.Merged, nil, nil, nil); werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "tgsim: merged fleet metrics exported to %s\n", o.exportDir)
	}

	quiet, csvDir := o.quiet, o.csvDir
	if quiet {
		fmt.Printf("reps=%d ok=%d workers=%d events=%d wall=%.3fs events_per_sec=%.0f\n",
			len(res.Reps), res.Succeeded(), res.Workers,
			res.TotalEvents(), res.Wall, res.EventsPerSec())
		return err
	}

	tables := []struct {
		name string
		t    *report.Table
	}{
		{"fleet", res.SummaryTable()},
		{"modality_ci", res.ModalityTable()},
		{"mechanism_ci", res.MechanismTable()},
	}
	for i, entry := range tables {
		if i > 0 {
			fmt.Println()
		}
		if werr := entry.t.WriteText(os.Stdout); werr != nil {
			return werr
		}
		if csvDir != "" {
			if werr := os.MkdirAll(csvDir, 0o755); werr != nil {
				return werr
			}
			if werr := writeTo(filepath.Join(csvDir, entry.name+".csv"), entry.t.WriteCSV); werr != nil {
				return werr
			}
		}
	}
	return err
}

// modalityTable renders a core modality report as the usage-by-modality
// table, delegating to the shared core rendering path so live runs,
// -modality-out, -replay, and the observatory daemon's per-run reports
// all compare identical bytes.
func modalityTable(rep *core.Report) *report.Table {
	return core.ModalityTable(rep)
}

// fleetProgress is the -reps -progress printer: replication snapshots
// arrive concurrently from worker goroutines, the latest one overwrites a
// single live status line, and each replication's completion is printed
// on its own line.
type fleetProgress struct {
	mu sync.Mutex
}

func (fp *fleetProgress) update(rep int, seed uint64, s *telemetry.Snapshot) {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if s.Done {
		fmt.Fprintf(os.Stderr, "\r\x1b[K[rep %02d seed %d] %s\n", rep, seed, s.Line())
		return
	}
	fmt.Fprintf(os.Stderr, "\r\x1b[K[rep %02d seed %d] %s", rep, seed, s.Line())
}

// finish clears any partial status line once the fleet is done.
func (fp *fleetProgress) finish() {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	fmt.Fprintf(os.Stderr, "\r\x1b[K")
}

// largestBatchCores resolves the classifier's capability threshold (the
// biggest machine's batch cores) from the scenario config before the run
// starts, mirroring what scenario.Run reports afterwards.
func largestBatchCores(cfg scenario.Config) (int, error) {
	fed := cfg.Federation
	if fed == nil {
		var err error
		if fed, err = scenario.TG9(); err != nil {
			return 0, err
		}
	}
	largest := 0
	for _, m := range fed.Machines() {
		if m.BatchCores() > largest {
			largest = m.BatchCores()
		}
	}
	return largest, nil
}

// printProfile renders the kernel profile when one was collected. A phase
// profiler (the -profile default) prints the phase attribution and the
// per-event FEL/handler split; a bare self-profiler (library callers using
// Observe.Profile) keeps the classic per-name table.
func printProfile(res *scenario.Result) error {
	if res.Phases != nil {
		fmt.Println()
		fmt.Println(res.Phases.Summary())
		if err := res.Phases.PhaseTable().WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		return res.Phases.BreakdownTable().WriteText(os.Stdout)
	}
	if res.Profiler == nil {
		return nil
	}
	fmt.Println()
	fmt.Println(res.Profiler.Summary())
	return res.Profiler.Table().WriteText(os.Stdout)
}

// startProfiles starts the requested runtime profiles and returns the stop
// function that flushes them: the CPU profile stops and closes, then the
// heap profile is captured after a forced GC so it reflects live objects.
func startProfiles(cpuPath, memPath string) (func(), error) {
	stopCPU := func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	return func() {
		stopCPU()
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tgsim: -memprofile:", err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tgsim: -memprofile:", err)
		}
		f.Close()
	}, nil
}

// writeTo creates path, hands it to write, and closes it, reporting the
// first error.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
